//! Packets.
//!
//! A [`Packet`] carries addressing, accounting metadata (creation time, hop
//! count) and a [`Payload`]. Control-plane layers (NAS, X2, transport
//! handshakes) attach typed messages via `Payload::control`, which upper
//! crates downcast — the substrate never needs to know their shape.
//!
//! Memory discipline (the §13 fast path): small control messages are stored
//! *inline* in the payload enum instead of behind an `Arc` allocation, and
//! the tunnel stack keeps its first [`TUNNEL_INLINE_DEPTH`] headers in a
//! fixed array, touching the heap only for deeper stacking. Cloning a
//! packet is instrumented — every clone credits its wire size to the
//! thread's `bytes_copied` tally — so the bench can prove the forwarding
//! path stopped copying.

use crate::addr::Addr;
use dlte_sim::SimTime;
use std::any::{Any, TypeId};
use std::fmt;
use std::sync::Arc;

/// Flow identifier used by traffic generators and the latency tracer.
pub type FlowId = u64;

/// Inline small-control budget: messages of at most this many bytes (and at
/// most word alignment, and no destructor) are stored directly in the
/// payload enum — three words, matching the size of the `Flow` variant so
/// the fast path never grows the enum.
pub const SMALL_CONTROL_BYTES: usize = 24;

/// Packet payload.
#[derive(Clone)]
pub enum Payload {
    /// Pure filler (size still counts on the wire).
    Empty,
    /// User-plane data belonging to a traced flow.
    Flow { flow: FlowId, seq: u64 },
    /// A typed control message too large (or too rich — destructors,
    /// over-aligned fields) for the inline fast path. `Arc` keeps clones
    /// cheap and lets packets cross shard boundaries (the sharded engine
    /// moves events between worker threads).
    Control(Arc<dyn Any + Send + Sync>),
    /// A typed control message of at most [`SMALL_CONTROL_BYTES`] stored
    /// inline — no heap allocation. Constructed only by [`Payload::control`],
    /// which enforces the safety contract: `T: Any + Send + Sync`, fits the
    /// size/alignment budget, and `!needs_drop` (the bits are bitwise-copied
    /// by `Clone` and never dropped). Only `&T` is ever handed back out.
    SmallControl { type_id: TypeId, data: [u64; 3] },
}

impl Payload {
    /// Wrap a typed control message. Messages within the inline budget (≤ 3
    /// words, word-aligned, trivially droppable) avoid the `Arc` allocation
    /// entirely; everything else falls back to the shared heap box. The
    /// naive-memory baseline mode (see [`crate::set_naive_memory`]) forces
    /// the `Arc` path so the bench can measure the difference.
    pub fn control<T: Any + Send + Sync>(msg: T) -> Payload {
        if !crate::naive_memory()
            && std::mem::size_of::<T>() <= SMALL_CONTROL_BYTES
            && std::mem::align_of::<T>() <= std::mem::align_of::<u64>()
            && !std::mem::needs_drop::<T>()
        {
            let mut data = [0u64; 3];
            // SAFETY: `T` fits in 24 bytes with alignment ≤ 8 (checked
            // above), so writing it over the `[u64; 3]` backing store is in
            // bounds and aligned. `msg` is moved in; with `!needs_drop::<T>`
            // there is no destructor to lose, and the stored bits are only
            // ever read back as `&T` behind the matching `TypeId`.
            unsafe { std::ptr::write(data.as_mut_ptr() as *mut T, msg) };
            Payload::SmallControl {
                type_id: TypeId::of::<T>(),
                data,
            }
        } else {
            Payload::Control(Arc::new(msg))
        }
    }

    /// Downcast a control payload to `&T`.
    pub fn as_control<T: Any>(&self) -> Option<&T> {
        match self {
            Payload::Control(rc) => rc.downcast_ref::<T>(),
            Payload::SmallControl { type_id, data } if *type_id == TypeId::of::<T>() => {
                // SAFETY: the `TypeId` match proves these bits were written
                // by `control::<T>`, at this alignment, within bounds.
                Some(unsafe { &*(data.as_ptr() as *const T) })
            }
            _ => None,
        }
    }

    /// Whether a control message took the inline fast path (test/bench
    /// observability; not part of the payload's semantics).
    #[doc(hidden)]
    pub fn is_inline_control(&self) -> bool {
        matches!(self, Payload::SmallControl { .. })
    }

    /// The flow id, if this is flow data.
    pub fn flow_id(&self) -> Option<FlowId> {
        match self {
            Payload::Flow { flow, .. } => Some(*flow),
            _ => None,
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Empty => write!(f, "Empty"),
            Payload::Flow { flow, seq } => write!(f, "Flow({flow}#{seq})"),
            // Inline and Arc control render identically: which storage a
            // message landed in is a memory detail, not an observable.
            Payload::Control(_) | Payload::SmallControl { .. } => write!(f, "Control(..)"),
        }
    }
}

/// A tunnel header pushed by GTP-U encapsulation (see [`crate::gtp`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TunnelHeader {
    /// Tunnel endpoint identifier.
    pub teid: u32,
    /// Inner (original) source/destination restored at decapsulation.
    pub inner_src: Addr,
    pub inner_dst: Addr,
}

impl TunnelHeader {
    const EMPTY: TunnelHeader = TunnelHeader {
        teid: 0,
        inner_src: Addr::UNSPECIFIED,
        inner_dst: Addr::UNSPECIFIED,
    };
}

/// How many tunnel headers a packet holds without touching the heap. Two
/// covers every topology in the repo: S1-U (one layer) and S5/S8 stacking
/// (two layers); deeper experiments spill transparently.
pub const TUNNEL_INLINE_DEPTH: usize = 2;

/// A stack of tunnel encapsulations, innermost last pushed.
///
/// The first [`TUNNEL_INLINE_DEPTH`] headers live in a fixed inline array —
/// pushing and popping a tunnel is a few stores, no allocation. Past that
/// depth the whole stack moves to a heap `Vec` (`spill`) and stays there
/// until it empties; the representation is invisible through the API.
/// The naive-memory baseline mode spills on the first push so the bench can
/// price the old always-heap behavior.
#[derive(Clone)]
pub struct TunnelStack {
    inline: [TunnelHeader; TUNNEL_INLINE_DEPTH],
    inline_len: u8,
    // Boxed so the common unspilled case pays one pointer, not a full
    // Vec header — this keeps `Packet` a cache line smaller. The extra
    // indirection only costs on the rare deep-stacking spill path.
    #[allow(clippy::box_collection)]
    spill: Option<Box<Vec<TunnelHeader>>>,
}

impl TunnelStack {
    pub const fn new() -> TunnelStack {
        TunnelStack {
            inline: [TunnelHeader::EMPTY; TUNNEL_INLINE_DEPTH],
            inline_len: 0,
            spill: None,
        }
    }

    fn spilled(&self) -> Option<&Vec<TunnelHeader>> {
        match &self.spill {
            Some(v) if !v.is_empty() => Some(v),
            _ => None,
        }
    }

    pub fn len(&self) -> usize {
        if let Some(v) = self.spilled() {
            v.len()
        } else {
            self.inline_len as usize
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push a header on top of the stack (it becomes the outermost tunnel).
    pub fn push(&mut self, h: TunnelHeader) {
        if self.spilled().is_some() {
            self.spill.as_mut().expect("just checked").push(h);
        } else if self.inline_len as usize == TUNNEL_INLINE_DEPTH || crate::naive_memory() {
            // Move the inline prefix to the heap, then grow there.
            let mut v = Vec::with_capacity(self.inline_len as usize + 1);
            v.extend_from_slice(&self.inline[..self.inline_len as usize]);
            v.push(h);
            self.spill = Some(Box::new(v));
            self.inline_len = 0;
        } else {
            self.inline[self.inline_len as usize] = h;
            self.inline_len += 1;
        }
    }

    /// Pop the outermost (most recently pushed) header.
    pub fn pop(&mut self) -> Option<TunnelHeader> {
        if self.spilled().is_some() {
            self.spill.as_mut().expect("just checked").pop()
        } else if self.inline_len > 0 {
            self.inline_len -= 1;
            Some(self.inline[self.inline_len as usize])
        } else {
            None
        }
    }

    /// The outermost header, if any.
    pub fn last(&self) -> Option<&TunnelHeader> {
        if let Some(v) = self.spilled() {
            v.last()
        } else if self.inline_len > 0 {
            Some(&self.inline[self.inline_len as usize - 1])
        } else {
            None
        }
    }

    /// Header at `i`, counted from the bottom (first pushed) of the stack.
    pub fn get(&self, i: usize) -> Option<&TunnelHeader> {
        if let Some(v) = self.spilled() {
            v.get(i)
        } else if i < self.inline_len as usize {
            Some(&self.inline[i])
        } else {
            None
        }
    }

    /// Iterate bottom (first pushed) to top (outermost).
    pub fn iter(&self) -> impl Iterator<Item = &TunnelHeader> {
        let slice: &[TunnelHeader] = if let Some(v) = self.spilled() {
            v
        } else {
            &self.inline[..self.inline_len as usize]
        };
        slice.iter()
    }

    /// Whether the stack currently lives on the heap (test observability).
    #[doc(hidden)]
    pub fn is_spilled(&self) -> bool {
        self.spilled().is_some()
    }
}

impl Default for TunnelStack {
    fn default() -> TunnelStack {
        TunnelStack::new()
    }
}

impl std::ops::Index<usize> for TunnelStack {
    type Output = TunnelHeader;
    fn index(&self, i: usize) -> &TunnelHeader {
        self.get(i).expect("tunnel index out of bounds")
    }
}

/// Inline and spilled stacks holding the same headers compare equal — the
/// storage representation is not observable.
impl PartialEq for TunnelStack {
    fn eq(&self, other: &TunnelStack) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}
impl Eq for TunnelStack {}

impl fmt::Debug for TunnelStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// A network packet.
#[derive(Debug)]
pub struct Packet {
    /// Unique id for tracing.
    pub id: u64,
    pub src: Addr,
    pub dst: Addr,
    /// Current on-wire size including any tunnel overhead, bytes.
    pub size_bytes: u32,
    pub created_at: SimTime,
    pub payload: Payload,
    /// Stack of tunnel encapsulations (innermost last pushed).
    pub tunnels: TunnelStack,
    /// Router hops traversed so far.
    pub hops: u32,
    /// TTL — packets are dropped when it reaches zero (guards against
    /// routing loops in experiment topologies).
    pub ttl: u8,
}

/// Cloning a packet duplicates its wire bytes; the fast path should almost
/// never do it (forwarding moves handles — see [`crate::pool`]). Every clone
/// credits `size_bytes` to the thread's `bytes_copied` tally so the bench
/// and the fan-out regression test can count copies.
impl Clone for Packet {
    fn clone(&self) -> Packet {
        dlte_sim::report::note_copy(self.size_bytes as u64);
        Packet {
            id: self.id,
            src: self.src,
            dst: self.dst,
            size_bytes: self.size_bytes,
            created_at: self.created_at,
            payload: self.payload.clone(),
            tunnels: self.tunnels.clone(),
            hops: self.hops,
            ttl: self.ttl,
        }
    }
}

impl Packet {
    /// Default TTL.
    pub const DEFAULT_TTL: u8 = 64;

    pub fn new(id: u64, src: Addr, dst: Addr, size_bytes: u32, now: SimTime) -> Packet {
        Packet {
            id,
            src,
            dst,
            size_bytes,
            created_at: now,
            payload: Payload::Empty,
            tunnels: TunnelStack::new(),
            hops: 0,
            ttl: Self::DEFAULT_TTL,
        }
    }

    /// Builder-style payload attachment.
    pub fn with_payload(mut self, payload: Payload) -> Packet {
        self.payload = payload;
        self
    }

    /// True if currently tunnel-encapsulated.
    pub fn is_tunneled(&self) -> bool {
        !self.tunnels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::test_support::naive_memory_lock;

    #[derive(Debug, PartialEq)]
    struct FakeNas {
        imsi: u64,
    }

    #[test]
    fn control_payload_downcasts() {
        let p = Packet::new(
            1,
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 0, 0, 2),
            100,
            SimTime::ZERO,
        )
        .with_payload(Payload::control(FakeNas { imsi: 42 }));
        let msg = p.payload.as_control::<FakeNas>().expect("downcast");
        assert_eq!(msg.imsi, 42);
        // Wrong type → None.
        assert!(p.payload.as_control::<String>().is_none());
        assert_eq!(p.payload.flow_id(), None);
    }

    #[test]
    fn flow_payload_exposes_id() {
        let payload = Payload::Flow { flow: 7, seq: 3 };
        assert_eq!(payload.flow_id(), Some(7));
        assert!(payload.as_control::<FakeNas>().is_none());
    }

    #[test]
    fn clone_shares_control_arc() {
        let p = Payload::control(FakeNas { imsi: 1 });
        let q = p.clone();
        assert_eq!(
            p.as_control::<FakeNas>().unwrap(),
            q.as_control::<FakeNas>().unwrap()
        );
    }

    #[test]
    fn small_control_goes_inline_large_falls_back() {
        let _guard = naive_memory_lock(false);
        // 8 bytes, word-aligned, no drop: inline.
        let small = Payload::control(FakeNas { imsi: 9 });
        assert!(small.is_inline_control());
        assert_eq!(small.as_control::<FakeNas>().unwrap().imsi, 9);
        // Wrong-type downcast on the inline path is rejected by TypeId.
        assert!(small.as_control::<u32>().is_none());

        // 32 bytes: over the 3-word budget → Arc.
        #[derive(Debug, PartialEq)]
        struct Big([u64; 4]);
        let big = Payload::control(Big([1, 2, 3, 4]));
        assert!(!big.is_inline_control());
        assert_eq!(big.as_control::<Big>().unwrap(), &Big([1, 2, 3, 4]));

        // Needs drop (owns a heap box): must not be bitwise-copied → Arc.
        let dropful = Payload::control(String::from("nas"));
        assert!(!dropful.is_inline_control());
        assert_eq!(dropful.as_control::<String>().unwrap(), "nas");

        // Over-aligned: must not be stored at word alignment → Arc.
        #[repr(align(16))]
        #[derive(Debug, PartialEq)]
        struct Aligned(u64);
        let aligned = Payload::control(Aligned(5));
        assert!(!aligned.is_inline_control());
        assert_eq!(aligned.as_control::<Aligned>().unwrap(), &Aligned(5));
    }

    #[test]
    fn inline_control_survives_clone() {
        let _guard = naive_memory_lock(false);
        let p = Payload::control(FakeNas { imsi: 7 });
        assert!(p.is_inline_control());
        let q = p.clone();
        drop(p);
        assert_eq!(q.as_control::<FakeNas>().unwrap().imsi, 7);
    }

    #[test]
    fn naive_memory_forces_arc_control() {
        let _guard = naive_memory_lock(true);
        let p = Payload::control(FakeNas { imsi: 3 });
        assert!(!p.is_inline_control(), "baseline mode boxes everything");
        assert_eq!(p.as_control::<FakeNas>().unwrap().imsi, 3);
    }

    #[test]
    fn tunnel_stack_inline_until_depth_then_spills() {
        let _guard = naive_memory_lock(false);
        let h = |teid| TunnelHeader {
            teid,
            inner_src: Addr::new(1, 0, 0, 1),
            inner_dst: Addr::new(2, 0, 0, 2),
        };
        let mut s = TunnelStack::new();
        assert!(s.is_empty());
        s.push(h(1));
        s.push(h(2));
        assert!(!s.is_spilled(), "depth 2 stays inline");
        assert_eq!(s.len(), 2);
        assert_eq!(s.last().unwrap().teid, 2);
        assert_eq!(s[0].teid, 1);
        s.push(h(3));
        assert!(s.is_spilled(), "depth 3 moves to the heap");
        assert_eq!(s.len(), 3);
        assert_eq!(s.last().unwrap().teid, 3);
        // Pops come back in LIFO order across the spill boundary.
        assert_eq!(s.pop().unwrap().teid, 3);
        assert_eq!(s.pop().unwrap().teid, 2);
        assert_eq!(s.pop().unwrap().teid, 1);
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn tunnel_stack_eq_ignores_representation() {
        let _guard = naive_memory_lock(false);
        let h = |teid| TunnelHeader {
            teid,
            inner_src: Addr::UNSPECIFIED,
            inner_dst: Addr::UNSPECIFIED,
        };
        // Build one stack that spilled (went to depth 3 and back down) and
        // one that never left the inline array.
        let mut spilled = TunnelStack::new();
        spilled.push(h(1));
        spilled.push(h(2));
        spilled.push(h(3));
        spilled.pop();
        assert!(spilled.is_spilled());
        let mut inline = TunnelStack::new();
        inline.push(h(1));
        inline.push(h(2));
        assert!(!inline.is_spilled());
        assert_eq!(spilled, inline);
        assert_eq!(format!("{spilled:?}"), format!("{inline:?}"));
    }

    #[test]
    fn packet_clone_counts_bytes_copied() {
        let ((), report) = dlte_sim::report::scope(|| {
            let p = Packet::new(
                1,
                Addr::new(10, 0, 0, 1),
                Addr::new(10, 0, 0, 2),
                700,
                SimTime::ZERO,
            );
            let q = p.clone();
            let _r = q.clone();
        });
        assert_eq!(report.bytes_copied, 1400, "two clones of a 700 B packet");
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Payload::Empty), "Empty");
        assert_eq!(
            format!("{:?}", Payload::Flow { flow: 1, seq: 2 }),
            "Flow(1#2)"
        );
        assert_eq!(
            format!("{:?}", Payload::control(FakeNas { imsi: 0 })),
            "Control(..)"
        );
    }
}
