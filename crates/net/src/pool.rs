//! Generational packet arena.
//!
//! The forwarding fast path parks every in-flight packet here and moves an
//! 8-byte [`PacketRef`] through the event queue instead of a ~130-byte
//! `Packet` (or worse, a heap clone per hop). Slots are reused LIFO, so a
//! steady-state forwarding load touches the same few cache-hot slots with
//! zero allocator traffic.
//!
//! Ownership is checked, not assumed: each slot carries a generation number
//! that bumps every time the slot is vacated. A [`PacketRef`] is only valid
//! while its generation matches — using a handle after its packet was taken
//! (or double-taking one) is a recoverable [`PoolError::Stale`], never a
//! silent read of someone else's packet.

use crate::packet::Packet;

/// Handle to a packet parked in a [`PacketPool`]. `Copy`, 8 bytes; moving
/// one through the event queue is the whole point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PacketRef {
    slot: u32,
    gen: u32,
}

/// Why a pool access failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PoolError {
    /// The handle's generation no longer matches its slot: the packet was
    /// already taken (use-after-free / double-take), or the handle belongs
    /// to a different pool.
    Stale,
}

struct PoolSlot {
    gen: u32,
    packet: Option<Packet>,
}

/// Generational slab arena for in-flight packets.
#[derive(Default)]
pub struct PacketPool {
    slots: Vec<PoolSlot>,
    /// Vacant slot indices, reused LIFO (cache-hot).
    free: Vec<u32>,
    /// Occupied slots.
    live: usize,
    /// Generation floor for slots created after a [`PacketPool::reclaim`]:
    /// rebuilding the slab forgets per-slot generation history, so new
    /// slots start above the highest generation ever handed out, keeping
    /// pre-reclaim handles stale forever.
    gen_floor: u32,
}

impl PacketPool {
    pub fn new() -> PacketPool {
        PacketPool::default()
    }

    /// Park a packet, returning its handle.
    pub fn insert(&mut self, packet: Packet) -> PacketRef {
        match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                debug_assert!(s.packet.is_none());
                s.packet = Some(packet);
                self.live += 1;
                PacketRef { slot, gen: s.gen }
            }
            None => {
                debug_assert!(self.slots.len() < u32::MAX as usize);
                let slot = self.slots.len() as u32;
                let gen = self.gen_floor;
                self.slots.push(PoolSlot {
                    gen,
                    packet: Some(packet),
                });
                self.live += 1;
                PacketRef { slot, gen }
            }
        }
    }

    /// Take the packet out, vacating the slot and invalidating every copy of
    /// this handle (the slot's generation bumps).
    pub fn take(&mut self, r: PacketRef) -> Result<Packet, PoolError> {
        let s = self
            .slots
            .get_mut(r.slot as usize)
            .filter(|s| s.gen == r.gen)
            .ok_or(PoolError::Stale)?;
        let packet = s.packet.take().ok_or(PoolError::Stale)?;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(r.slot);
        self.live -= 1;
        Ok(packet)
    }

    /// Borrow the packet behind a live handle.
    pub fn get(&self, r: PacketRef) -> Option<&Packet> {
        self.slots
            .get(r.slot as usize)
            .filter(|s| s.gen == r.gen)
            .and_then(|s| s.packet.as_ref())
    }

    /// Mutably borrow the packet behind a live handle.
    pub fn get_mut(&mut self, r: PacketRef) -> Option<&mut Packet> {
        self.slots
            .get_mut(r.slot as usize)
            .filter(|s| s.gen == r.gen)
            .and_then(|s| s.packet.as_mut())
    }

    /// Packets currently parked.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Slot capacity (memory held, occupied or not).
    pub fn capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Release all storage if the pool is empty — the packet-side twin of
    /// `EventQueue::reclaim`. Stale handles from before the reclaim stay
    /// stale forever: a vacated slot's generation was already bumped past
    /// every handle it issued, so the new generation floor (the maximum
    /// generation the old slab reached) keeps rebuilt slots ahead of all of
    /// them. No-op while any packet is parked.
    pub fn reclaim(&mut self) {
        if self.live != 0 {
            return;
        }
        let max_gen = self.slots.iter().map(|s| s.gen).max().unwrap_or(0);
        self.gen_floor = self.gen_floor.max(max_gen);
        self.slots = Vec::new();
        self.free = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use dlte_sim::SimTime;

    fn pkt(id: u64) -> Packet {
        Packet::new(
            id,
            Addr::new(10, 0, 0, 1),
            Addr::new(10, 0, 0, 2),
            100,
            SimTime::ZERO,
        )
    }

    #[test]
    fn insert_take_round_trips() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(7));
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.get(r).unwrap().id, 7);
        let p = pool.take(r).expect("live handle");
        assert_eq!(p.id, 7);
        assert!(pool.is_empty());
    }

    #[test]
    fn stale_handle_is_checked_error() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(1));
        pool.take(r).unwrap();
        // Double-take, read, and write through the dead handle all fail.
        assert!(matches!(pool.take(r), Err(PoolError::Stale)));
        assert!(pool.get(r).is_none());
        assert!(pool.get_mut(r).is_none());
        // The slot is reused with a new generation; the old handle still
        // cannot touch the new occupant.
        let r2 = pool.insert(pkt(2));
        assert_eq!(r2.slot, r.slot, "LIFO slot reuse");
        assert_ne!(r2.gen, r.gen);
        assert!(matches!(pool.take(r), Err(PoolError::Stale)));
        assert_eq!(pool.get(r2).unwrap().id, 2);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut pool = PacketPool::new();
        let r = pool.insert(pkt(3));
        pool.get_mut(r).unwrap().hops = 9;
        assert_eq!(pool.take(r).unwrap().hops, 9);
    }

    #[test]
    fn reclaim_keeps_old_handles_stale() {
        let mut pool = PacketPool::new();
        let mut refs = Vec::new();
        for i in 0..100 {
            refs.push(pool.insert(pkt(i)));
        }
        pool.reclaim();
        assert!(pool.capacity() >= 100, "live packets pin the slab");
        for r in &refs {
            pool.take(*r).unwrap();
        }
        pool.reclaim();
        assert_eq!(pool.capacity(), 0);
        // A fresh insert lands in slot 0 again; every pre-reclaim handle
        // (including the one that used slot 0) must stay stale.
        let fresh = pool.insert(pkt(42));
        for r in refs {
            assert!(matches!(pool.take(r), Err(PoolError::Stale)));
        }
        assert_eq!(pool.take(fresh).unwrap().id, 42);
    }
}
