//! Sharded network simulations: one topology, N engine shards.
//!
//! [`ShardedSim`] is the driver experiments hold instead of a bare
//! [`Simulation<Network>`]. At `--shards 1` it is a thin wrapper; at
//! `--shards N` it owns N full replicas of the topology, each with the
//! handlers of only its own nodes installed, advancing in lockstep epochs
//! under the conservative synchronization of [`dlte_sim::run_sharded`].
//!
//! ## Replication model
//!
//! Every shard holds the *complete* `Network` — all node info, routes and
//! links — built by running the same deterministic builder N times and
//! pruning foreign handlers ([`Network::apply_shard_plan`]). This trades
//! memory for the guarantee that no shard ever reaches into another's
//! state:
//!
//! * link state is safe to replicate because an endpoint only mutates its
//!   own transmit direction, and up/override flips arrive as broadcast
//!   faults;
//! * faults are pre-scheduled identically into every shard
//!   ([`ShardedSim::schedule_fault_broadcast`]), so replicated link/route
//!   state stays in sync without messages;
//! * packets crossing a shard boundary become timestamped messages carrying
//!   a pre-allocated canonical key, exchanged at epoch barriers.
//!
//! The result — enforced by tests from the engine level up through the
//! golden experiments — is that traces, work counters and every statistic
//! are **bit-identical at any shard count**.

use crate::link::LinkId;
use crate::network::{in_flight_packets, NetAudit, NetEvent, NetFault, Network};
use crate::node::{NodeHandler, NodeId};
use crate::trace::TraceStats;
use dlte_sim::{run_sharded, EventQueue, RunOutcome, ShardPlan, SimDuration, SimTime, Simulation};

/// Compute the conservative plan for partitioning `net` into `n` shards by
/// the given node→shard map: the lookahead is the minimum configured
/// propagation delay over links whose endpoints live on different shards.
/// Panics (via [`ShardPlan::new`]) if any inter-shard link has zero delay —
/// conservative sync would deadlock at zero lookahead.
pub fn plan_for(net: &Network, n: usize, shard_of: Vec<usize>) -> ShardPlan {
    assert_eq!(shard_of.len(), net.core.nodes.len());
    let mut lookahead = SimDuration::MAX;
    for l in &net.core.links {
        if shard_of[l.a] != shard_of[l.b] {
            lookahead = lookahead.min(l.config.delay);
        }
    }
    ShardPlan::new(n, shard_of, lookahead)
}

/// A network simulation that may be partitioned into engine shards.
// One of these exists per experiment arm, never in bulk, so the size
// skew between the variants is irrelevant and boxing would only cost
// an indirection on every accessor.
#[allow(clippy::large_enum_variant)]
pub enum ShardedSim {
    /// The classic single-engine run.
    Single(Simulation<Network>),
    /// N replicas advancing under conservative synchronization.
    Multi {
        shards: Vec<Simulation<Network>>,
        plan: ShardPlan,
    },
}

impl ShardedSim {
    /// Wrap an already-built single-engine simulation.
    pub fn single(sim: Simulation<Network>) -> ShardedSim {
        ShardedSim::Single(sim)
    }

    /// Build an `n`-shard simulation. `build` must be a deterministic
    /// builder (same topology, handlers and seeds every call) — it runs
    /// once per shard. `shard_of` maps the built topology to shards; it is
    /// evaluated on the first replica.
    ///
    /// `n <= 1` (or a map that uses a single shard) degenerates to
    /// [`ShardedSim::Single`] with zero overhead.
    pub fn build<B, P>(n: usize, build: B, shard_of: P) -> ShardedSim
    where
        B: Fn() -> Simulation<Network>,
        P: FnOnce(&Network) -> Vec<usize>,
    {
        let first = build();
        if n <= 1 {
            return ShardedSim::Single(first);
        }
        let map = shard_of(first.world());
        let used = map.iter().max().map_or(1, |&m| m + 1);
        if used <= 1 {
            return ShardedSim::Single(first);
        }
        let plan = plan_for(first.world(), used, map);
        let mut shards = Vec::with_capacity(used);
        // Prune each replica as soon as it is built so peak memory holds at
        // most one full handler set, not `used` of them — at E16 scale the
        // handlers (key directories, per-UE state) dominate the footprint.
        let mut first = first;
        first.world_mut().apply_shard_plan(&plan, 0);
        shards.push(first);
        for i in 1..used {
            let mut sim = build();
            sim.world_mut().apply_shard_plan(&plan, i);
            shards.push(sim);
        }
        ShardedSim::Multi { shards, plan }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        match self {
            ShardedSim::Single(_) => 1,
            ShardedSim::Multi { shards, .. } => shards.len(),
        }
    }

    /// Advance to `horizon`. `max_events` is a per-shard dispatch budget,
    /// exactly as in [`Simulation::run_until`].
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        match self {
            ShardedSim::Single(sim) => {
                let plan = ShardPlan::single(sim.world().core.nodes.len());
                run_sharded(std::slice::from_mut(sim), &plan, horizon, max_events)
            }
            ShardedSim::Multi { shards, plan } => run_sharded(shards, plan, horizon, max_events),
        }
    }

    /// Run until every shard drains (or a budget trips).
    pub fn run_to_completion(&mut self, max_events: u64) -> RunOutcome {
        self.run_until(SimTime::MAX, max_events)
    }

    /// Current time: the barrier front (max over shards — all shards have
    /// processed everything at or before the epochs already completed).
    pub fn now(&self) -> SimTime {
        match self {
            ShardedSim::Single(sim) => sim.now(),
            ShardedSim::Multi { shards, .. } => shards
                .iter()
                .map(|s| s.now())
                .max()
                .unwrap_or(SimTime::ZERO),
        }
    }

    /// Total (non-control) events dispatched across shards — shard-count
    /// invariant because replicated `Start`/`Fault` events are excluded
    /// (see [`dlte_sim::World::is_control`]).
    pub fn events_dispatched(&self) -> u64 {
        match self {
            ShardedSim::Single(sim) => sim.events_dispatched(),
            ShardedSim::Multi { shards, .. } => shards.iter().map(|s| s.events_dispatched()).sum(),
        }
    }

    /// The world of a single-shard run. Panics on multi-shard runs — use
    /// the routed accessors ([`ShardedSim::handler_as`],
    /// [`ShardedSim::trace_merged`], [`ShardedSim::audit_merged`]) instead.
    pub fn world(&self) -> &Network {
        match self {
            ShardedSim::Single(sim) => sim.world(),
            ShardedSim::Multi { .. } => {
                panic!("ShardedSim::world on a multi-shard run: use the routed accessors")
            }
        }
    }

    /// Mutable world access (single-shard runs only, see [`ShardedSim::world`]).
    pub fn world_mut(&mut self) -> &mut Network {
        match self {
            ShardedSim::Single(sim) => sim.world_mut(),
            ShardedSim::Multi { .. } => {
                panic!("ShardedSim::world_mut on a multi-shard run: use the routed accessors")
            }
        }
    }

    /// The event queue of a single-shard run (panics on multi-shard — there
    /// is one queue per shard, and external schedules must pick a side).
    pub fn queue(&self) -> &EventQueue<NetEvent> {
        match self {
            ShardedSim::Single(sim) => sim.queue(),
            ShardedSim::Multi { .. } => {
                panic!("ShardedSim::queue on a multi-shard run")
            }
        }
    }

    /// Mutable queue access (single-shard runs only).
    pub fn queue_mut(&mut self) -> &mut EventQueue<NetEvent> {
        match self {
            ShardedSim::Single(sim) => sim.queue_mut(),
            ShardedSim::Multi { .. } => {
                panic!("ShardedSim::queue_mut on a multi-shard run")
            }
        }
    }

    /// The replica that owns `node` (any replica for single-shard runs).
    fn owner(&self, node: NodeId) -> &Simulation<Network> {
        match self {
            ShardedSim::Single(sim) => sim,
            ShardedSim::Multi { shards, plan } => &shards[plan.shard_of(node)],
        }
    }

    fn owner_mut(&mut self, node: NodeId) -> &mut Simulation<Network> {
        match self {
            ShardedSim::Single(sim) => sim,
            ShardedSim::Multi { shards, plan } => &mut shards[plan.shard_of(node)],
        }
    }

    /// Typed handler access, routed to the shard that owns `node`.
    pub fn handler_as<T: NodeHandler>(&self, node: NodeId) -> Option<&T> {
        self.owner(node).world().handler_as::<T>(node)
    }

    /// Typed mutable handler access, routed to the owning shard.
    pub fn handler_as_mut<T: NodeHandler>(&mut self, node: NodeId) -> Option<&mut T> {
        self.owner_mut(node).world_mut().handler_as_mut::<T>(node)
    }

    /// Install a handler on the owning shard.
    pub fn set_handler(&mut self, node: NodeId, handler: Box<dyn NodeHandler>) {
        self.owner_mut(node).world_mut().set_handler(node, handler);
    }

    /// Whether `node` is currently crashed (down flags are replicated, so
    /// the owning shard is authoritative and every replica agrees).
    pub fn node_is_down(&self, node: NodeId) -> bool {
        self.owner(node).world().node_is_down(node)
    }

    /// Whether `node` is currently paused.
    pub fn node_is_paused(&self, node: NodeId) -> bool {
        self.owner(node).world().node_is_paused(node)
    }

    /// Addresses bound to `node` (node info is replicated; the owning
    /// shard's copy is authoritative).
    pub fn node_addrs(&self, node: NodeId) -> Vec<crate::addr::Addr> {
        self.owner(node).world().core.nodes[node].addrs().to_vec()
    }

    /// Whether a link is administratively up (link state is replicated;
    /// shard 0's copy is as good as any).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        match self {
            ShardedSim::Single(sim) => sim.world().core.links[link].up,
            ShardedSim::Multi { shards, .. } => shards[0].world().core.links[link].up,
        }
    }

    /// Schedule a fault into **every** shard at `at`, keeping replicated
    /// link/route/liveness state in sync. This is the only correct way to
    /// inject faults into a sharded run; for single-shard runs it is
    /// equivalent to scheduling one `NetEvent::Fault`.
    pub fn schedule_fault_broadcast(&mut self, at: SimTime, fault: NetFault) {
        match self {
            ShardedSim::Single(sim) => {
                sim.queue_mut().schedule_at(at, NetEvent::Fault(fault));
            }
            ShardedSim::Multi { shards, .. } => {
                for sim in shards.iter_mut() {
                    sim.queue_mut()
                        .schedule_at(at, NetEvent::Fault(fault.clone()));
                }
            }
        }
    }

    /// The merged end-to-end trace. Single-shard: a clone of the world's
    /// trace. Multi-shard: the per-shard traces folded in shard order (flow
    /// entries are disjoint across shards, so the fold is exact — see
    /// [`TraceStats::absorb`]).
    pub fn trace_merged(&self) -> TraceStats {
        match self {
            ShardedSim::Single(sim) => sim.world().trace().clone(),
            ShardedSim::Multi { shards, .. } => {
                let mut merged = TraceStats::new();
                for sim in shards {
                    merged.absorb(sim.world().trace());
                }
                merged
            }
        }
    }

    /// The merged conservation-ledger audit: per-shard fabric counters and
    /// drop tallies summed, in-flight packets counted across every queue.
    /// The merged ledger closes exactly like a single-shard one (each packet
    /// fate is counted by exactly one shard).
    pub fn audit_merged(&self) -> NetAudit {
        match self {
            ShardedSim::Single(sim) => sim.world().audit(in_flight_packets(sim.queue())),
            ShardedSim::Multi { shards, .. } => {
                let mut merged = NetAudit::default();
                for sim in shards {
                    merged.absorb(&sim.world().audit(in_flight_packets(sim.queue())));
                }
                merged
            }
        }
    }

    /// Per-shard immutable access (diagnostics, tests).
    pub fn shards(&self) -> Vec<&Simulation<Network>> {
        match self {
            ShardedSim::Single(sim) => vec![sim],
            ShardedSim::Multi { shards, .. } => shards.iter().collect(),
        }
    }

    /// The plan, when sharded.
    pub fn plan(&self) -> Option<&ShardPlan> {
        match self {
            ShardedSim::Single(_) => None,
            ShardedSim::Multi { plan, .. } => Some(plan),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, Prefix};
    use crate::handlers::{CbrSource, EchoServer, Pinger};
    use crate::link::LinkConfig;
    use crate::network::NetworkBuilder;
    use crate::node::NodeCtx;
    use crate::packet::{Packet, Payload};

    /// Two AP-like clusters (source+sink pairs) joined by one backhaul
    /// link with 10 ms delay — the minimum interesting sharded topology.
    /// Cluster A pings across the backhaul into cluster B's echo server;
    /// both clusters also run local CBR traffic that never crosses.
    fn two_cluster_sim() -> Simulation<Network> {
        let mut b = NetworkBuilder::new(42);
        // Cluster A: nodes 0 (router), 1 (pinger), 2 (local cbr), 3 (local sink).
        let ra = b.node("ra");
        let pinger = b.host(
            "pinger",
            Box::new(Pinger::new(
                Addr::new(10, 1, 0, 2),
                7,
                dlte_sim::SimDuration::from_millis(50),
            )),
        );
        b.addr(pinger, Addr::new(10, 0, 0, 1));
        let cbr_a = b.host(
            "cbr-a",
            Box::new(CbrSource::new(Addr::new(10, 0, 0, 3), 1, 2e6, 500)),
        );
        b.addr(cbr_a, Addr::new(10, 0, 0, 2));
        let sink_a = b.node("sink-a");
        b.addr(sink_a, Addr::new(10, 0, 0, 3));
        // Cluster B: nodes 4 (router), 5 (echo), 6 (local cbr), 7 (local sink).
        let rb = b.node("rb");
        let echo = b.host("echo", Box::new(EchoServer::new()));
        b.addr(echo, Addr::new(10, 1, 0, 2));
        let cbr_b = b.host(
            "cbr-b",
            Box::new(CbrSource::new(Addr::new(10, 1, 0, 4), 2, 2e6, 500)),
        );
        b.addr(cbr_b, Addr::new(10, 1, 0, 3));
        let sink_b = b.node("sink-b");
        b.addr(sink_b, Addr::new(10, 1, 0, 4));
        let lan = LinkConfig::lan();
        for &(x, y) in &[(ra, pinger), (ra, cbr_a), (ra, sink_a)] {
            b.link(x, y, lan);
        }
        for &(x, y) in &[(rb, echo), (rb, cbr_b), (rb, sink_b)] {
            b.link(x, y, lan);
        }
        b.link(ra, rb, LinkConfig::rural_backhaul());
        b.auto_routes();
        b.build()
    }

    fn cluster_map(net: &Network) -> Vec<usize> {
        (0..net.core.nodes.len())
            .map(|n| if n < 4 { 0 } else { 1 })
            .collect()
    }

    fn run_and_fingerprint(n: usize) -> (Vec<(u64, u64, String)>, u64, String, String) {
        dlte_obs::set_tracing(true);
        let _ = dlte_obs::drain_raw();
        let mut sim = ShardedSim::build(n, two_cluster_sim, cluster_map);
        assert_eq!(sim.num_shards(), n.clamp(1, 2));
        sim.run_until(SimTime::from_secs(2), 10_000_000);
        let records: Vec<(u64, u64, String)> = dlte_obs::take_records()
            .into_iter()
            .map(|r| (r.t_ns, r.node, format!("{:?}", r.event)))
            .collect();
        dlte_obs::set_tracing(false);
        let trace = sim.trace_merged();
        let audit = sim.audit_merged();
        let flows = trace
            .flow_ids()
            .iter()
            .map(|&f| {
                let t = trace.flow(f).unwrap();
                format!(
                    "{f}:{}:{}:{:.9}:{:.9}",
                    t.delivered_packets,
                    t.delivered_bytes,
                    t.latency_ms.percentile(50.0),
                    t.hops.mean()
                )
            })
            .collect::<Vec<_>>()
            .join("|");
        (
            records,
            sim.events_dispatched(),
            format!("{audit:?}"),
            flows,
        )
    }

    /// The tentpole invariant, at the network level: trace records, work
    /// counters, the conservation audit and per-flow statistics are
    /// bit-identical at 1 and 2 shards.
    #[test]
    fn sharded_network_run_is_bit_identical_to_single() {
        let (r1, e1, a1, f1) = run_and_fingerprint(1);
        let (r2, e2, a2, f2) = run_and_fingerprint(2);
        assert!(e1 > 0 && !f1.is_empty());
        assert_eq!(e1, e2, "work counters");
        assert_eq!(a1, a2, "conservation audit");
        assert_eq!(f1, f2, "per-flow stats");
        assert_eq!(r1.len(), r2.len(), "trace record count");
        assert_eq!(r1, r2, "trace records");
    }

    /// Cross-backhaul RTT measured through a sharded run matches physics:
    /// 2 × 10 ms backhaul + LAN hops ≈ 20.4 ms, proving cross-shard packets
    /// actually flow (not silently dropped at the boundary).
    #[test]
    fn cross_shard_traffic_flows_and_rtt_is_sane() {
        let mut sim = ShardedSim::build(2, two_cluster_sim, cluster_map);
        assert_eq!(sim.num_shards(), 2);
        sim.run_until(SimTime::from_secs(2), 10_000_000);
        let pinger: &Pinger = sim.handler_as(1).expect("pinger on shard 0");
        assert!(pinger.rtt_ms.len() >= 30, "rtts {}", pinger.rtt_ms.len());
        let med = pinger.rtt_ms.median();
        assert!((20.0..21.5).contains(&med), "median RTT {med}");
        let echo: &EchoServer = sim.handler_as(5).expect("echo on shard 1");
        assert!(echo.echoed >= 30);
        // The audit closes across shards.
        let audit = sim.audit_merged();
        let f = &audit.fabric;
        assert_eq!(
            f.originated + f.reforwarded,
            f.accepted
                + audit.drops_ttl
                + audit.drops_no_route
                + audit.drops_queue
                + audit.drops_loss
                + audit.drops_link_down
        );
        assert_eq!(f.accepted, f.arrivals + audit.in_flight);
    }

    /// Faults broadcast into every shard keep replicated state in sync and
    /// produce exactly one trace record for the transition.
    #[test]
    fn broadcast_faults_apply_everywhere_and_emit_once() {
        let backhaul_fault = |sim: &mut ShardedSim| {
            // Link 6 is ra—rb (the 7th link built).
            sim.schedule_fault_broadcast(
                SimTime::from_millis(500),
                NetFault::LinkUp { link: 6, up: false },
            );
            sim.schedule_fault_broadcast(
                SimTime::from_millis(900),
                NetFault::LinkUp { link: 6, up: true },
            );
        };
        let run = |n: usize| {
            dlte_obs::set_tracing(true);
            let _ = dlte_obs::drain_raw();
            let mut sim = ShardedSim::build(n, two_cluster_sim, cluster_map);
            backhaul_fault(&mut sim);
            sim.run_until(SimTime::from_secs(2), 10_000_000);
            let recs = dlte_obs::take_records();
            dlte_obs::set_tracing(false);
            let fault_recs: Vec<String> = recs
                .iter()
                .filter(|r| matches!(r.event, dlte_obs::Event::FaultLink { .. }))
                .map(|r| format!("{}:{:?}", r.t_ns, r.event))
                .collect();
            let trace = sim.trace_merged();
            (
                fault_recs,
                trace.drops_link_down,
                format!("{:?}", sim.audit_merged()),
            )
        };
        let (fr1, drops1, audit1) = run(1);
        let (fr2, drops2, audit2) = run(2);
        assert_eq!(fr1.len(), 2, "one down + one up record: {fr1:?}");
        assert_eq!(fr1, fr2, "fault records identical, no duplicates");
        assert!(drops1 > 0, "outage actually dropped packets");
        assert_eq!(drops1, drops2);
        assert_eq!(audit1, audit2);
    }

    /// Handlers that crash and restart across the epoch barrier behave
    /// identically at any shard count (restart runs on the owner only;
    /// the crash/restart trace is emitted once).
    #[test]
    fn node_crash_and_restart_is_shard_invariant() {
        struct Counter {
            got: u64,
        }
        impl NodeHandler for Counter {
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, p: Packet) {
                self.got += 1;
                ctx.deliver_local(&p);
            }
            fn on_crash(&mut self) {
                self.got = 0;
            }
        }
        let build = || {
            let mut b = NetworkBuilder::new(7);
            let src = b.host(
                "src",
                Box::new(CbrSource::new(Addr::new(10, 1, 0, 1), 3, 1e6, 1250)),
            );
            b.addr(src, Addr::new(10, 0, 0, 1));
            let dst = b.host("dst", Box::new(Counter { got: 0 }));
            b.addr(dst, Addr::new(10, 1, 0, 1));
            b.link(src, dst, LinkConfig::rural_backhaul());
            b.auto_routes();
            b.build()
        };
        let map = |_: &Network| vec![0, 1];
        let run = |n: usize| {
            let mut sim = ShardedSim::build(n, build, map);
            sim.schedule_fault_broadcast(SimTime::from_millis(400), NetFault::NodeDown { node: 1 });
            sim.schedule_fault_broadcast(SimTime::from_millis(700), NetFault::NodeUp { node: 1 });
            sim.run_until(SimTime::from_secs(2), 1_000_000);
            assert!(!sim.node_is_down(1));
            let got = sim.handler_as::<Counter>(1).unwrap().got;
            let t = sim.trace_merged();
            (got, t.drops_node_down, sim.events_dispatched())
        };
        let (g1, d1, e1) = run(1);
        let (g2, d2, e2) = run(2);
        assert!(g1 > 0 && d1 > 0);
        assert_eq!((g1, d1, e1), (g2, d2, e2));
    }

    /// A packet arriving mid-payload-`Control` across shards downcasts on
    /// the far side (Arc payloads survive the thread boundary).
    #[test]
    fn control_payloads_cross_shards() {
        #[derive(Debug)]
        struct Hello {
            n: u32,
        }
        struct Sender;
        impl NodeHandler for Sender {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                let p = ctx
                    .make_packet(Addr::new(10, 1, 0, 1), 100)
                    .with_payload(Payload::control(Hello { n: 99 }));
                ctx.forward(p);
            }
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _p: Packet) {}
        }
        struct Receiver {
            saw: Option<u32>,
        }
        impl NodeHandler for Receiver {
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, p: Packet) {
                self.saw = p.payload.as_control::<Hello>().map(|h| h.n);
            }
        }
        let build = || {
            let mut b = NetworkBuilder::new(1);
            let s = b.host("s", Box::new(Sender));
            b.addr(s, Addr::new(10, 0, 0, 1));
            let r = b.host("r", Box::new(Receiver { saw: None }));
            b.addr(r, Addr::new(10, 1, 0, 1));
            let l = b.link(s, r, LinkConfig::rural_backhaul());
            b.route(s, Prefix::new(Addr::new(10, 1, 0, 1), 32), l);
            b.build()
        };
        let mut sim = ShardedSim::build(2, build, |_| vec![0, 1]);
        sim.run_to_completion(10_000);
        assert_eq!(sim.handler_as::<Receiver>(1).unwrap().saw, Some(99));
    }
}
