//! End-to-end tracing: who delivered what, how late, via how many hops.

use crate::packet::{FlowId, Packet};
use dlte_sim::stats::{Samples, Welford};
use dlte_sim::SimTime;
use std::collections::HashMap;

/// Per-flow delivery record.
#[derive(Clone, Debug, Default)]
pub struct FlowTrace {
    /// One-way latencies, milliseconds.
    pub latency_ms: Samples,
    pub delivered_packets: u64,
    pub delivered_bytes: u64,
    pub hops: Welford,
}

/// Network-wide trace statistics.
#[derive(Clone, Debug, Default)]
pub struct TraceStats {
    flows: HashMap<FlowId, FlowTrace>,
    /// Deliveries that were not flow data (control, etc.).
    pub other_delivered: u64,
    pub drops_queue: u64,
    pub drops_loss: u64,
    pub drops_no_route: u64,
    pub drops_ttl: u64,
    pub drops_link_down: u64,
    /// Packets that arrived at (or were sent by) a crashed/paused node.
    pub drops_node_down: u64,
}

impl TraceStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the delivery of `packet` at time `now`.
    pub fn record_delivery(&mut self, now: SimTime, packet: &Packet) {
        match packet.payload.flow_id() {
            Some(flow) => {
                let t = self.flows.entry(flow).or_default();
                t.latency_ms
                    .push_duration_ms(now.saturating_since(packet.created_at));
                t.delivered_packets += 1;
                t.delivered_bytes += packet.size_bytes as u64;
                t.hops.push(packet.hops as f64);
            }
            None => self.other_delivered += 1,
        }
    }

    /// Trace for one flow, if any packets were delivered. Latency
    /// percentiles are available directly through `&self` — see
    /// [`Samples::percentile`], which no longer needs `&mut` to sort.
    pub fn flow(&self, flow: FlowId) -> Option<&FlowTrace> {
        self.flows.get(&flow)
    }

    /// All flow ids seen.
    pub fn flow_ids(&self) -> Vec<FlowId> {
        let mut ids: Vec<FlowId> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Total packets delivered across flows.
    pub fn total_delivered(&self) -> u64 {
        self.flows.values().map(|f| f.delivered_packets).sum()
    }

    /// Total drops of every cause.
    pub fn total_drops(&self) -> u64 {
        self.drops_queue
            + self.drops_loss
            + self.drops_no_route
            + self.drops_ttl
            + self.drops_link_down
            + self.drops_node_down
    }

    /// Fold another shard's trace into this one. Counters sum; flow tables
    /// union. A flow's deliveries all happen at the node that owns its
    /// destination — one shard — so in sharded runs the per-flow entries are
    /// disjoint and the merge is exact (bit-identical to single-shard). If a
    /// flow *is* delivered at nodes on different shards, its samples
    /// concatenate: order-insensitive statistics (percentiles, counts) stay
    /// exact; running means may differ in final-bit rounding.
    pub fn absorb(&mut self, other: &TraceStats) {
        for (flow, t) in &other.flows {
            let dst = self.flows.entry(*flow).or_default();
            for &v in t.latency_ms.values() {
                dst.latency_ms.push(v);
            }
            dst.delivered_packets += t.delivered_packets;
            dst.delivered_bytes += t.delivered_bytes;
            dst.hops.merge(&t.hops);
        }
        self.other_delivered += other.other_delivered;
        self.drops_queue += other.drops_queue;
        self.drops_loss += other.drops_loss;
        self.drops_no_route += other.drops_no_route;
        self.drops_ttl += other.drops_ttl;
        self.drops_link_down += other.drops_link_down;
        self.drops_node_down += other.drops_node_down;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::packet::Payload;

    fn flow_packet(flow: FlowId, created_ms: u64) -> Packet {
        Packet::new(
            0,
            Addr::new(1, 1, 1, 1),
            Addr::new(2, 2, 2, 2),
            500,
            SimTime::from_millis(created_ms),
        )
        .with_payload(Payload::Flow { flow, seq: 0 })
    }

    #[test]
    fn records_latency_per_flow() {
        let mut t = TraceStats::new();
        t.record_delivery(SimTime::from_millis(15), &flow_packet(1, 10));
        t.record_delivery(SimTime::from_millis(30), &flow_packet(1, 10));
        t.record_delivery(SimTime::from_millis(12), &flow_packet(2, 10));
        let f1 = t.flow(1).unwrap();
        assert_eq!(f1.delivered_packets, 2);
        assert_eq!(f1.delivered_bytes, 1000);
        assert!((f1.latency_ms.mean() - 12.5).abs() < 1e-9);
        assert_eq!(t.flow(2).unwrap().delivered_packets, 1);
        assert_eq!(t.total_delivered(), 3);
        assert_eq!(t.flow_ids(), vec![1, 2]);
        assert!(t.flow(99).is_none());
    }

    #[test]
    fn non_flow_deliveries_counted_separately() {
        let mut t = TraceStats::new();
        let p = Packet::new(
            0,
            Addr::new(1, 0, 0, 1),
            Addr::new(1, 0, 0, 2),
            64,
            SimTime::ZERO,
        );
        t.record_delivery(SimTime::from_millis(1), &p);
        assert_eq!(t.other_delivered, 1);
        assert_eq!(t.total_delivered(), 0);
    }

    #[test]
    fn drop_totals() {
        let mut t = TraceStats::new();
        t.drops_queue = 2;
        t.drops_loss = 3;
        t.drops_no_route = 5;
        t.drops_ttl = 7;
        t.drops_link_down = 11;
        t.drops_node_down = 13;
        assert_eq!(t.total_drops(), 41);
    }
}
