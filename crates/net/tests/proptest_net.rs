//! Property-based tests for the packet substrate: LPM routing against a
//! naive reference, address-pool soundness, and GTP stack round trips.

use dlte_net::gtp::{decapsulate, encapsulate, GTP_OVERHEAD_BYTES};
use dlte_net::node::NodeInfo;
use dlte_net::{Addr, AddrPool, Packet, Prefix};
use dlte_sim::SimTime;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u32>().prop_map(Addr)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, len)| Prefix::new(Addr(a), len))
}

proptest! {
    /// Longest-prefix match agrees with a naive scan over all matching
    /// entries.
    #[test]
    fn lpm_matches_reference(
        routes in prop::collection::vec((arb_prefix(), 0usize..8), 0..20),
        dst in arb_addr(),
    ) {
        let mut info = NodeInfo::new("r");
        for &(p, l) in &routes {
            info.set_route(p, l);
        }
        let got = info.route_for(dst);
        // Reference: longest matching prefix among the *last-written* entry
        // per prefix (set_route replaces).
        let mut dedup: Vec<(Prefix, usize)> = Vec::new();
        for &(p, l) in &routes {
            if let Some(e) = dedup.iter_mut().find(|(q, _)| *q == p) {
                e.1 = l;
            } else {
                dedup.push((p, l));
            }
        }
        let expect = dedup
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len)
            .map(|&(_, l)| l);
        // Ties on length: any of the tied links is acceptable — verify the
        // chosen link belongs to a maximal-length matching prefix.
        match (got, expect) {
            (None, None) => {}
            (Some(g), Some(_)) => {
                let max_len = dedup
                    .iter()
                    .filter(|(p, _)| p.contains(dst))
                    .map(|(p, _)| p.len)
                    .max()
                    .unwrap();
                prop_assert!(dedup
                    .iter()
                    .any(|&(p, l)| p.contains(dst) && p.len == max_len && l == g));
            }
            other => prop_assert!(false, "mismatch {other:?}"),
        }
    }

    /// Prefix contains() is consistent with mask arithmetic, and
    /// normalization makes contains(prefix.addr) always true.
    #[test]
    fn prefix_contains_consistent(p in arb_prefix(), a in arb_addr()) {
        prop_assert!(p.contains(p.addr), "prefix must contain its own base");
        let by_mask = (a.0 & p.mask()) == p.addr.0;
        prop_assert_eq!(p.contains(a), by_mask);
    }

    /// Address pools never hand out duplicates among live allocations, and
    /// everything they hand out is inside the prefix.
    #[test]
    fn pool_uniqueness(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut pool = AddrPool::new(Prefix::new(Addr::new(10, 9, 0, 0), 25));
        let mut live: Vec<Addr> = Vec::new();
        let mut seen_live: HashSet<Addr> = HashSet::new();
        for alloc in ops {
            if alloc || live.is_empty() {
                if let Some(a) = pool.alloc() {
                    prop_assert!(pool.prefix().contains(a));
                    prop_assert!(seen_live.insert(a), "duplicate live addr {a}");
                    live.push(a);
                }
            } else {
                let a = live.swap_remove(live.len() / 2);
                seen_live.remove(&a);
                pool.release(a);
            }
        }
    }

    /// Arbitrary GTP tunnel stacks encapsulate and decapsulate back to the
    /// original packet exactly.
    #[test]
    fn gtp_stack_round_trips(
        hops in prop::collection::vec((any::<u32>(), arb_addr(), arb_addr()), 1..5),
        src in arb_addr(),
        dst in arb_addr(),
        size in 20u32..1500,
    ) {
        let original = Packet::new(1, src, dst, size, SimTime::ZERO);
        let mut p = original.clone();
        for &(teid, osrc, odst) in &hops {
            p = encapsulate(p, teid, osrc, odst);
        }
        prop_assert_eq!(
            p.size_bytes,
            size + GTP_OVERHEAD_BYTES * hops.len() as u32
        );
        for &(teid, _, _) in hops.iter().rev() {
            p = decapsulate(p, Some(teid)).expect("teid matches");
        }
        prop_assert_eq!(p.src, original.src);
        prop_assert_eq!(p.dst, original.dst);
        prop_assert_eq!(p.size_bytes, original.size_bytes);
        prop_assert!(!p.is_tunneled());
    }

    /// Decapsulating with a wrong TEID never alters the packet.
    #[test]
    fn gtp_wrong_teid_is_identity(teid in any::<u32>(), wrong in any::<u32>()) {
        prop_assume!(teid != wrong);
        let p = encapsulate(
            Packet::new(1, Addr(1), Addr(2), 500, SimTime::ZERO),
            teid,
            Addr(3),
            Addr(4),
        );
        let size = p.size_bytes;
        let err = decapsulate(p, Some(wrong)).expect_err("mismatch");
        prop_assert_eq!(err.size_bytes, size);
        prop_assert!(err.is_tunneled());
    }
}
