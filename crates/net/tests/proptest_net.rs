//! Property-based tests for the packet substrate: LPM routing against a
//! naive reference, address-pool soundness, and GTP stack round trips.

use dlte_net::gtp::{decapsulate, encapsulate, GTP_OVERHEAD_BYTES};
use dlte_net::node::NodeInfo;
use dlte_net::pool::{PacketPool, PacketRef, PoolError};
use dlte_net::{Addr, AddrPool, Packet, Prefix, TunnelHeader};
use dlte_sim::SimTime;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u32>().prop_map(Addr)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, len)| Prefix::new(Addr(a), len))
}

/// One mutation against a routing table / address set, for driving the
/// compiled-FIB equivalence test below.
#[derive(Clone, Debug)]
enum FibOp {
    Set(Prefix, usize),
    Remove(Prefix),
    AddAddr(Addr),
    RemoveAddr(Addr),
}

/// Addresses drawn from a handful of high bits so random prefixes actually
/// overlap and contain each other, instead of being scattered across 2^32.
fn clustered_addr() -> impl Strategy<Value = Addr> {
    prop_oneof![
        (0u32..8, any::<u32>()).prop_map(|(hi, lo)| Addr((hi << 29) | (lo & 0x1FFF_FFFF))),
        arb_addr(),
    ]
}

fn clustered_prefix() -> impl Strategy<Value = Prefix> {
    // The vendored prop_oneof! has no weights; repeating an arm biases the
    // draw. Extra weight lands on len 0 (Prefix::DEFAULT-style catch-alls)
    // and len 32 (host routes) — the LPM edge lengths.
    let len = prop_oneof![0u8..=32, 0u8..=32, Just(0u8), Just(32u8)];
    (clustered_addr(), len).prop_map(|(a, l)| Prefix::new(a, l))
}

fn arb_fib_op() -> impl Strategy<Value = FibOp> {
    prop_oneof![
        (clustered_prefix(), 0usize..8).prop_map(|(p, l)| FibOp::Set(p, l)),
        (clustered_prefix(), 0usize..8).prop_map(|(p, l)| FibOp::Set(p, l)),
        clustered_prefix().prop_map(FibOp::Remove),
        clustered_addr().prop_map(FibOp::AddAddr),
        clustered_addr().prop_map(FibOp::RemoveAddr),
    ]
}

proptest! {
    /// Longest-prefix match agrees with a naive scan over all matching
    /// entries.
    #[test]
    fn lpm_matches_reference(
        routes in prop::collection::vec((arb_prefix(), 0usize..8), 0..20),
        dst in arb_addr(),
    ) {
        let mut info = NodeInfo::new("r");
        for &(p, l) in &routes {
            info.set_route(p, l);
        }
        let got = info.route_for(dst);
        // Reference: longest matching prefix among the *last-written* entry
        // per prefix (set_route replaces).
        let mut dedup: Vec<(Prefix, usize)> = Vec::new();
        for &(p, l) in &routes {
            if let Some(e) = dedup.iter_mut().find(|(q, _)| *q == p) {
                e.1 = l;
            } else {
                dedup.push((p, l));
            }
        }
        let expect = dedup
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len)
            .map(|&(_, l)| l);
        // Ties on length: any of the tied links is acceptable — verify the
        // chosen link belongs to a maximal-length matching prefix.
        match (got, expect) {
            (None, None) => {}
            (Some(g), Some(_)) => {
                let max_len = dedup
                    .iter()
                    .filter(|(p, _)| p.contains(dst))
                    .map(|(p, _)| p.len)
                    .max()
                    .unwrap();
                prop_assert!(dedup
                    .iter()
                    .any(|&(p, l)| p.contains(dst) && p.len == max_len && l == g));
            }
            other => prop_assert!(false, "mismatch {other:?}"),
        }
    }

    /// The compiled FIB stays equivalent to the linear reference scan across
    /// arbitrary interleavings of route replacement, route removal, and
    /// address churn — the generation counter must invalidate the FIB on
    /// every mutation kind, never just the first.
    #[test]
    fn compiled_fib_tracks_linear_reference(
        ops in prop::collection::vec(arb_fib_op(), 1..40),
        probes in prop::collection::vec(clustered_addr(), 1..8),
    ) {
        let mut info = NodeInfo::new("fib");
        for op in &ops {
            match *op {
                FibOp::Set(p, l) => info.set_route(p, l),
                FibOp::Remove(p) => { info.remove_route(p); }
                FibOp::AddAddr(a) => info.add_addr(a),
                FibOp::RemoveAddr(a) => { info.remove_addr(a); }
            }
            // Query after *every* mutation: a stale FIB from a missed
            // generation bump would surface here, not only at the end.
            for &dst in probes.iter().chain(info.addrs().iter()) {
                prop_assert_eq!(
                    info.route_for(dst),
                    info.route_for_linear(dst),
                    "FIB diverged on {} after {:?}",
                    dst,
                    op
                );
                prop_assert_eq!(
                    info.owns(dst),
                    info.addrs().contains(&dst),
                    "owns() diverged on {}",
                    dst
                );
            }
            // Route bases are the adversarial probes for LPM tie-breaking.
            let bases: Vec<Addr> = info.routes().iter().map(|&(p, _)| p.addr).collect();
            for dst in bases {
                prop_assert_eq!(info.route_for(dst), info.route_for_linear(dst));
            }
        }
    }

    /// A default route is matched by every address, and a host route beats
    /// it through the compiled FIB exactly as through the linear scan.
    #[test]
    fn default_route_is_matched_through_fib(dst in arb_addr(), host in arb_addr()) {
        let mut info = NodeInfo::new("default");
        info.set_route(Prefix::DEFAULT, 1);
        prop_assert_eq!(info.route_for(dst), Some(1));
        info.set_route(Prefix::new(host, 32), 2);
        let expect = if dst == host { Some(2) } else { Some(1) };
        prop_assert_eq!(info.route_for(dst), expect);
        prop_assert_eq!(info.route_for(dst), info.route_for_linear(dst));
        info.remove_route(Prefix::DEFAULT);
        let expect = if dst == host { Some(2) } else { None };
        prop_assert_eq!(info.route_for(dst), expect);
        prop_assert_eq!(info.route_for(dst), info.route_for_linear(dst));
    }

    /// Prefix contains() is consistent with mask arithmetic, and
    /// normalization makes contains(prefix.addr) always true.
    #[test]
    fn prefix_contains_consistent(p in arb_prefix(), a in arb_addr()) {
        prop_assert!(p.contains(p.addr), "prefix must contain its own base");
        let by_mask = (a.0 & p.mask()) == p.addr.0;
        prop_assert_eq!(p.contains(a), by_mask);
    }

    /// Address pools never hand out duplicates among live allocations, and
    /// everything they hand out is inside the prefix.
    #[test]
    fn pool_uniqueness(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut pool = AddrPool::new(Prefix::new(Addr::new(10, 9, 0, 0), 25));
        let mut live: Vec<Addr> = Vec::new();
        let mut seen_live: HashSet<Addr> = HashSet::new();
        for alloc in ops {
            if alloc || live.is_empty() {
                if let Some(a) = pool.alloc() {
                    prop_assert!(pool.prefix().contains(a));
                    prop_assert!(seen_live.insert(a), "duplicate live addr {a}");
                    live.push(a);
                }
            } else {
                let a = live.swap_remove(live.len() / 2);
                seen_live.remove(&a);
                pool.release(a);
            }
        }
    }

    /// Arbitrary GTP tunnel stacks encapsulate and decapsulate back to the
    /// original packet exactly.
    #[test]
    fn gtp_stack_round_trips(
        hops in prop::collection::vec((any::<u32>(), arb_addr(), arb_addr()), 1..5),
        src in arb_addr(),
        dst in arb_addr(),
        size in 20u32..1500,
    ) {
        let original = Packet::new(1, src, dst, size, SimTime::ZERO);
        let mut p = original.clone();
        for &(teid, osrc, odst) in &hops {
            p = encapsulate(p, teid, osrc, odst);
        }
        prop_assert_eq!(
            p.size_bytes,
            size + GTP_OVERHEAD_BYTES * hops.len() as u32
        );
        for &(teid, _, _) in hops.iter().rev() {
            p = decapsulate(p, Some(teid)).expect("teid matches");
        }
        prop_assert_eq!(p.src, original.src);
        prop_assert_eq!(p.dst, original.dst);
        prop_assert_eq!(p.size_bytes, original.size_bytes);
        prop_assert!(!p.is_tunneled());
    }

    /// The inline tunnel stack is byte-equivalent to the naive heap-`Vec`
    /// implementation it replaced: an arbitrary interleaving of encap and
    /// decap ops (driven deep enough to cross the spill threshold both ways)
    /// leaves the packet's observable state — addressing, wire size, tunnel
    /// contents top to bottom — identical to a shadow model running the old
    /// `Vec::push`/`Vec::pop` logic.
    #[test]
    fn tunnel_stack_matches_naive_vec_model(
        ops in prop::collection::vec(
            prop_oneof![
                // Encapsulate with (teid, outer_src, outer_dst).
                (any::<u32>(), arb_addr(), arb_addr()).prop_map(Some),
                // Decapsulate the outermost tunnel (wildcard TEID).
                Just(None),
            ],
            1..24,
        ),
        src in arb_addr(),
        dst in arb_addr(),
        size in 20u32..1500,
    ) {
        // Shadow model: the pre-§13 representation, verbatim.
        #[derive(Clone, Debug, PartialEq)]
        struct NaiveModel {
            src: Addr,
            dst: Addr,
            size_bytes: u32,
            tunnels: Vec<TunnelHeader>,
        }
        let mut model = NaiveModel { src, dst, size_bytes: size, tunnels: Vec::new() };
        let mut p = Packet::new(1, src, dst, size, SimTime::ZERO);
        for op in &ops {
            match *op {
                Some((teid, osrc, odst)) => {
                    p = encapsulate(p, teid, osrc, odst);
                    model.tunnels.push(TunnelHeader {
                        teid,
                        inner_src: model.src,
                        inner_dst: model.dst,
                    });
                    model.src = osrc;
                    model.dst = odst;
                    model.size_bytes += GTP_OVERHEAD_BYTES;
                }
                None => {
                    let popped = model.tunnels.pop();
                    match decapsulate(p, None) {
                        Ok(inner) => {
                            let h = popped.expect("model had a tunnel too");
                            model.src = h.inner_src;
                            model.dst = h.inner_dst;
                            model.size_bytes =
                                model.size_bytes.saturating_sub(GTP_OVERHEAD_BYTES);
                            p = inner;
                        }
                        Err(unchanged) => {
                            prop_assert!(popped.is_none(), "only untunneled may refuse");
                            p = unchanged;
                        }
                    }
                }
            }
            // Byte-equivalence after *every* op, through every accessor.
            prop_assert_eq!(p.src, model.src);
            prop_assert_eq!(p.dst, model.dst);
            prop_assert_eq!(p.size_bytes, model.size_bytes);
            prop_assert_eq!(p.tunnels.len(), model.tunnels.len());
            prop_assert_eq!(p.is_tunneled(), !model.tunnels.is_empty());
            prop_assert_eq!(p.tunnels.last(), model.tunnels.last());
            for (i, h) in model.tunnels.iter().enumerate() {
                prop_assert_eq!(p.tunnels.get(i), Some(h));
            }
            let collected: Vec<TunnelHeader> = p.tunnels.iter().copied().collect();
            prop_assert_eq!(&collected, &model.tunnels);
        }
    }

    /// The generational packet arena agrees with a naive `Box<Packet>`
    /// reference model (a map of live boxes) under random alloc / free /
    /// forward-mutation / encap churn: every live handle reaches exactly its
    /// packet, stale handles are rejected (never another packet), reclaim at
    /// empty points is invisible, and teardown drains with no leaks.
    #[test]
    fn packet_pool_matches_boxed_reference(
        ops in prop::collection::vec(
            prop_oneof![
                // Insert a packet with this id/size.
                (0u64..1_000_000, 40u32..1500).prop_map(|(id, sz)| (0u8, id as usize, sz)),
                // Take the pick-th live handle.
                (0usize..1000).prop_map(|pick| (1u8, pick, 0u32)),
                // Re-take a dead handle (must be Stale).
                (0usize..1000).prop_map(|pick| (2u8, pick, 0u32)),
                // Forward-mutate the pick-th live packet (hops+ttl churn).
                (0usize..1000).prop_map(|pick| (3u8, pick, 0u32)),
                // Encapsulate the pick-th live packet in place.
                (0usize..1000).prop_map(|pick| (4u8, pick, 0u32)),
                // Attempt a reclaim (no-op unless empty; always sound).
                Just((5u8, 0usize, 0u32)),
            ],
            1..120,
        ),
    ) {
        let mut pool = PacketPool::new();
        // Reference: the naive heap model — id-keyed boxes, plus the stale
        // handle graveyard for use-after-free probes.
        let mut live: Vec<(PacketRef, Box<Packet>)> = Vec::new();
        let mut dead: Vec<PacketRef> = Vec::new();
        for &(kind, pick, sz) in &ops {
            match kind {
                0 => {
                    let packet = Packet::new(
                        pick as u64,
                        Addr::new(10, 0, 0, 1),
                        Addr::new(10, 0, 0, 2),
                        sz,
                        SimTime::ZERO,
                    );
                    let r = pool.insert(packet.clone());
                    live.push((r, Box::new(packet)));
                }
                1 if !live.is_empty() => {
                    let (r, expect) = live.swap_remove(pick % live.len());
                    let got = pool.take(r);
                    prop_assert!(got.is_ok());
                    let got = got.unwrap();
                    prop_assert_eq!(got.id, expect.id);
                    prop_assert_eq!(got.size_bytes, expect.size_bytes);
                    prop_assert_eq!(got.hops, expect.hops);
                    prop_assert_eq!(got.ttl, expect.ttl);
                    prop_assert_eq!(got.tunnels.len(), expect.tunnels.len());
                    dead.push(r);
                }
                2 if !dead.is_empty() => {
                    let r = dead[pick % dead.len()];
                    prop_assert!(matches!(pool.take(r), Err(PoolError::Stale)));
                    prop_assert!(pool.get(r).is_none());
                }
                3 if !live.is_empty() => {
                    let i = pick % live.len();
                    let (r, expect) = &mut live[i];
                    let p = pool.get_mut(*r).expect("live handle");
                    p.hops += 1;
                    p.ttl = p.ttl.saturating_sub(1);
                    expect.hops += 1;
                    expect.ttl = expect.ttl.saturating_sub(1);
                }
                4 if !live.is_empty() => {
                    let i = pick % live.len();
                    let (r, expect) = &mut live[i];
                    let p = pool.get_mut(*r).expect("live handle");
                    let h = TunnelHeader {
                        teid: pick as u32,
                        inner_src: p.src,
                        inner_dst: p.dst,
                    };
                    p.tunnels.push(h);
                    p.size_bytes += GTP_OVERHEAD_BYTES;
                    expect.tunnels.push(h);
                    expect.size_bytes += GTP_OVERHEAD_BYTES;
                }
                5 => {
                    pool.reclaim();
                    if live.is_empty() {
                        prop_assert_eq!(pool.capacity(), 0, "empty pool reclaims fully");
                    }
                }
                _ => {}
            }
            // Handle conservation: the pool tracks exactly the live set, and
            // every live handle still reads back its own packet.
            prop_assert_eq!(pool.len(), live.len());
            for (r, expect) in &live {
                let p = pool.get(*r).expect("live handle readable");
                prop_assert_eq!(p.id, expect.id);
            }
        }
        // Teardown: drain everything; no leaks, no cross-wired handles.
        for (r, expect) in live.drain(..) {
            let got = pool.take(r);
            prop_assert!(got.is_ok());
            prop_assert_eq!(got.unwrap().id, expect.id);
        }
        prop_assert!(pool.is_empty());
        for r in dead {
            prop_assert!(matches!(pool.take(r), Err(PoolError::Stale)));
        }
    }

    /// Decapsulating with a wrong TEID never alters the packet.
    #[test]
    fn gtp_wrong_teid_is_identity(teid in any::<u32>(), wrong in any::<u32>()) {
        prop_assume!(teid != wrong);
        let p = encapsulate(
            Packet::new(1, Addr(1), Addr(2), 500, SimTime::ZERO),
            teid,
            Addr(3),
            Addr(4),
        );
        let size = p.size_bytes;
        let err = decapsulate(p, Some(wrong)).expect_err("mismatch");
        prop_assert_eq!(err.size_bytes, size);
        prop_assert!(err.is_tunneled());
    }
}
