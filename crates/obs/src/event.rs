//! Typed trace events and the on-wire record envelope.
//!
//! Every variant is small, `Clone`, and externally tagged when serialized,
//! so a JSONL trace line looks like
//! `{"seq":12,"t_ns":152000000,"node":3,"event":{"NasStart":{"proc":"Attach","imsi":1000}}}`.

use serde::{Deserialize, Serialize};

/// NAS-level procedure kinds, used to key start/end span pairs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NasProc {
    /// The whole attach (request → accept), as seen by UE or core.
    Attach,
    /// The EPS-AKA exchange inside an attach.
    Auth,
    /// EPC session setup (GTP-C create-session leg).
    Session,
    /// Radio bearer / initial-context setup (S1AP leg).
    Bearer,
    ServiceRequest,
    Detach,
    Handover,
}

impl NasProc {
    pub fn name(self) -> &'static str {
        match self {
            NasProc::Attach => "attach",
            NasProc::Auth => "auth",
            NasProc::Session => "session",
            NasProc::Bearer => "bearer",
            NasProc::ServiceRequest => "service_request",
            NasProc::Detach => "detach",
            NasProc::Handover => "handover",
        }
    }
}

/// Steps of the EPS-AKA procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AkaStep {
    /// Core asked its key source (HSS / published directory) for a vector.
    VectorRequest,
    /// A fresh authentication vector was issued.
    VectorIssued,
    /// Challenge (RAND/AUTN) sent to the UE.
    Challenge,
    /// UE's RES accepted.
    Response,
    /// SQN resynchronization round-trip.
    Resync,
    /// Authentication failed terminally.
    Failure,
}

/// Why a packet was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Tail-dropped at a full link queue.
    Queue,
    /// Random loss on a lossy link.
    Loss,
    /// Transmitted into a link that is administratively/fault down.
    LinkDown,
    /// Arrived at (or originated from) a crashed or paused node.
    NodeDown,
    /// No routing-table entry for the destination.
    NoRoute,
    /// TTL exceeded.
    TtlExpired,
}

impl DropReason {
    /// Metrics-counter suffix: `drops_<name>`.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Queue => "queue",
            DropReason::Loss => "loss",
            DropReason::LinkDown => "link_down",
            DropReason::NodeDown => "node_down",
            DropReason::NoRoute => "no_route",
            DropReason::TtlExpired => "ttl",
        }
    }
}

/// One structured trace event. The emitting node and timestamp live in the
/// enclosing [`Record`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A NAS procedure began (span open).
    NasStart { proc: NasProc, imsi: u64 },
    /// A NAS procedure finished (span close); `ok` = accepted.
    NasEnd { proc: NasProc, imsi: u64, ok: bool },
    /// One step of the EPS-AKA exchange.
    Aka { step: AkaStep, imsi: u64 },
    /// First HARQ transmission of a transport block.
    HarqTx { ue: u64, ok: bool },
    /// A HARQ retransmission (attempt ≥ 2).
    HarqRetx { ue: u64, attempt: u8, ok: bool },
    /// HARQ gave up after `attempts` tries (residual loss).
    HarqFail { ue: u64, attempts: u8 },
    /// The MAC scheduler granted resource blocks to a UE.
    SchedGrant { ue: u64, rbs: u32, tbs_bits: u64 },
    /// A GTP-U echo request/response was handled (path management).
    GtpEcho { peer: String, restart_counter: u32 },
    /// A GTP-U error indication bounced an unknown TEID.
    GtpErrorIndication { teid: u64 },
    /// Path management declared a GTP peer dead.
    GtpPathDown { peer: String },
    /// Path management observed a peer restart (restart counter bumped).
    GtpPeerRestart { peer: String },
    /// A link fault transition (fault injection or recovery).
    FaultLink { link: u64, up: bool },
    /// A node fault transition; `node` is the affected node (the record's
    /// own `node` field for fault events names the same node).
    FaultNode { node: u64, up: bool },
    /// A packet was dropped.
    Drop { reason: DropReason, bytes: u32 },
}

/// A sequenced, timestamped, node-attributed event — one JSONL line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Monotonic per-drain sequence number (assigned at
    /// [`crate::take_records`] time, after any parallel stitching).
    pub seq: u64,
    /// Simulated time, nanoseconds.
    pub t_ns: u64,
    /// Emitting node id.
    pub node: u64,
    pub event: Event,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_json() {
        let r = Record {
            seq: 7,
            t_ns: 1_500_000,
            node: 3,
            event: Event::NasStart {
                proc: NasProc::Attach,
                imsi: 1001,
            },
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        // Externally tagged: the variant name is the single object key.
        assert!(json.contains("\"NasStart\""), "{json}");
    }

    #[test]
    fn every_variant_round_trips() {
        let events = vec![
            Event::NasStart {
                proc: NasProc::Auth,
                imsi: 1,
            },
            Event::NasEnd {
                proc: NasProc::Auth,
                imsi: 1,
                ok: true,
            },
            Event::Aka {
                step: AkaStep::Challenge,
                imsi: 1,
            },
            Event::HarqTx { ue: 4, ok: true },
            Event::HarqRetx {
                ue: 4,
                attempt: 2,
                ok: false,
            },
            Event::HarqFail { ue: 4, attempts: 4 },
            Event::SchedGrant {
                ue: 2,
                rbs: 25,
                tbs_bits: 18_336,
            },
            Event::GtpEcho {
                peer: "10.255.0.2".into(),
                restart_counter: 1,
            },
            Event::GtpErrorIndication { teid: 9 },
            Event::GtpPathDown {
                peer: "10.255.0.2".into(),
            },
            Event::GtpPeerRestart {
                peer: "10.255.0.3".into(),
            },
            Event::FaultLink { link: 5, up: false },
            Event::FaultNode { node: 6, up: true },
            Event::Drop {
                reason: DropReason::Queue,
                bytes: 500,
            },
        ];
        for e in events {
            let json = serde_json::to_string(&e).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e, "{json}");
        }
    }
}
