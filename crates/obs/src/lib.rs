//! # dlte-obs — cross-layer observability
//!
//! The shared observability substrate every `dlte-*` crate instruments
//! into. Three pieces:
//!
//! * **Structured event tracing** ([`event`], [`recorder`]): typed,
//!   serde-able [`Record`]s (NAS procedure start/end, EPS-AKA steps, HARQ
//!   tx/retx/fail, scheduler grants, GTP-U path management, fault
//!   transitions, packet drops) collected by a thread-local [`Recorder`].
//!   Tracing is **off by default** and the hot-path [`emit`] is a single
//!   thread-local boolean load when disabled, so instrumented code costs
//!   nothing in ordinary runs.
//! * **Metrics registry** ([`metrics`]): named counters, gauges and
//!   log2-bucketed histograms every layer registers into. Counters are
//!   always on (they feed the deterministic `drops_*` breakdown in
//!   `RunReport`); snapshots merge commutatively so parallel sweeps
//!   aggregate independent of worker count.
//! * **Span timers** ([`span`]): [`pair_spans`] turns start/end event
//!   pairs back into latency spans (attach = auth + session + bearer),
//!   handling nesting, unclosed spans, and spans cut short by a node
//!   crash.
//!
//! ## Determinism
//!
//! This crate sits *below* `dlte-sim`, so it cannot know about `SimTime`;
//! records carry raw nanoseconds (`t_ns`) and a `u64` node id. Event `seq`
//! numbers are assigned only when a buffer is drained via
//! [`take_records`] — `dlte-sim`'s `par_map` captures each work item's
//! raw records on the worker thread and re-absorbs them on the caller in
//! input order, so the numbered stream is byte-identical for any
//! `--jobs` count.

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use event::{AkaStep, DropReason, Event, NasProc, Record};
pub use metrics::{HistogramSnapshot, MetricsSnapshot};
pub use recorder::{
    absorb_raw, drain_raw, emit, set_tracing, take_records, tracing_enabled, BufferRecorder,
    NoopRecorder, RawRecord, Recorder,
};
pub use span::{pair_spans, Span, SpanOutcome};
