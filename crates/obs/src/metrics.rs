//! The metrics registry: named counters, gauges and log2 histograms.
//!
//! Unlike event tracing, counters are **always on** — they are cheap and
//! they feed the deterministic `drops_*` breakdown attached to every
//! `RunReport`. Hot paths (packet drops, engine dispatch, HARQ) use
//! pre-registered [`CounterId`] handles that bump a plain indexed cell;
//! the string-keyed [`counter_add`] stays for cold call sites, and both
//! feed the same snapshot.
//! Gauges and histograms may carry wall-clock values (worker timings);
//! those never enter the deterministic trace, only the optional
//! `--metrics` snapshot.
//!
//! The registry is thread-local; a parallel sweep's workers each
//! accumulate their own registry which the caller merges back with
//! [`absorb`]. Merging is commutative (counters add, gauges keep the
//! max, histogram buckets add), so aggregate metrics are independent of
//! the worker count.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

/// Log2-bucketed histogram state: bucket `i` counts values in
/// `[2^i, 2^(i+1))`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
    /// Bucket exponent → occupancy. Only touched buckets appear.
    pub buckets: BTreeMap<i64, u64>,
}

impl HistogramSnapshot {
    fn new() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
        }
    }

    fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

/// Exponent of the histogram bucket holding `v`: the unique `i` with
/// `2^i <= v < 2^(i+1)`, extracted from the IEEE-754 exponent bits so
/// edges are exact. Non-positive (and NaN) values land in `i64::MIN`;
/// subnormals are lumped into one bottom bucket.
pub fn bucket_index(v: f64) -> i64 {
    if v <= 0.0 || v.is_nan() {
        return i64::MIN;
    }
    let biased = ((v.to_bits() >> 52) & 0x7ff) as i64;
    if biased == 0 {
        -1075 // subnormal range
    } else {
        biased - 1023
    }
}

/// Inclusive lower edge of bucket `i` (for rendering).
pub fn bucket_lo(i: i64) -> f64 {
    2.0_f64.powi(i.clamp(-1074, 1023) as i32)
}

/// A point-in-time copy of (or a whole) metrics registry.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another snapshot into this one (commutative).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            *e = e.max(v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Counters whose name starts with `prefix`, with the prefix stripped —
    /// e.g. `prefixed("drops_")` yields the per-reason drop breakdown.
    pub fn prefixed(&self, prefix: &str) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter_map(|(k, &v)| k.strip_prefix(prefix).map(|s| (s.to_string(), v)))
            .collect()
    }
}

thread_local! {
    static REGISTRY: RefCell<MetricsSnapshot> = RefCell::new(MetricsSnapshot::default());
    /// Per-thread cells for interned counters, indexed by [`CounterId`].
    /// Folded into the named-counter snapshot by [`take`].
    static CELLS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide intern table: id → counter name. Registration is rare
/// (once per call site); the hot path never touches this.
static INTERNED: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());

/// A pre-registered counter handle. [`CounterId::add`] bumps a plain
/// thread-local cell indexed by id — no string hashing, no map lookup —
/// so counters on per-event hot paths (drops, engine dispatch, HARQ) cost
/// an array index. The cells are folded back into the named snapshot at
/// [`take`], so consumers (the `drops_*` breakdown, `--metrics`) see the
/// same `BTreeMap<String, u64>` regardless of which API fed it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(usize);

impl CounterId {
    /// Add `n` to this counter on the current thread.
    #[inline]
    pub fn add(self, n: u64) {
        CELLS.with(|c| {
            let mut c = c.borrow_mut();
            if c.len() <= self.0 {
                c.resize(self.0 + 1, 0);
            }
            c[self.0] += n;
        });
    }
}

/// Intern `name`, returning its stable [`CounterId`]. Registering the
/// same name twice returns the same id, so call sites can cache the
/// result in a `OnceLock` without coordinating.
pub fn register_counter(name: &'static str) -> CounterId {
    let mut t = INTERNED.lock().expect("intern table poisoned");
    if let Some(i) = t.iter().position(|&n| n == name) {
        return CounterId(i);
    }
    t.push(name);
    CounterId(t.len() - 1)
}

/// Fold this thread's interned-counter cells into its named registry
/// (zeroing the cells). Called by [`take`].
fn fold_cells(snap: &mut MetricsSnapshot) {
    CELLS.with(|c| {
        let mut c = c.borrow_mut();
        if c.iter().all(|&v| v == 0) {
            return;
        }
        let names = INTERNED.lock().expect("intern table poisoned");
        for (i, v) in c.iter_mut().enumerate() {
            if *v != 0 {
                *snap.counters.entry(names[i].to_string()).or_insert(0) += *v;
                *v = 0;
            }
        }
    });
}

/// Whether the runner wants full metrics snapshots merged into table meta
/// (the `--metrics` flag). Process-wide so worker threads see it too.
static CAPTURE: AtomicBool = AtomicBool::new(false);

pub fn set_capture(on: bool) {
    CAPTURE.store(on, Ordering::Relaxed);
}

pub fn capture() -> bool {
    CAPTURE.load(Ordering::Relaxed)
}

/// Add `n` to counter `name`.
pub fn counter_add(name: &str, n: u64) {
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        if let Some(c) = r.counters.get_mut(name) {
            *c += n;
        } else {
            r.counters.insert(name.to_string(), n);
        }
    });
}

/// Set gauge `name` (merge across workers keeps the max).
pub fn gauge_set(name: &str, v: f64) {
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        if let Some(g) = r.gauges.get_mut(name) {
            *g = v;
        } else {
            r.gauges.insert(name.to_string(), v);
        }
    });
}

/// Record `v` into histogram `name`.
pub fn observe(name: &str, v: f64) {
    REGISTRY.with(|r| {
        let mut r = r.borrow_mut();
        if let Some(h) = r.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = HistogramSnapshot::new();
            h.observe(v);
            r.histograms.insert(name.to_string(), h);
        }
    });
}

/// Drain this thread's registry — named counters, gauges, histograms and
/// the interned-counter cells — returning everything accumulated since
/// the last take.
pub fn take() -> MetricsSnapshot {
    let mut snap = REGISTRY.with(|r| std::mem::take(&mut *r.borrow_mut()));
    fold_cells(&mut snap);
    snap
}

/// Merge a drained registry (e.g. from a worker thread) into this
/// thread's registry.
pub fn absorb(snap: &MetricsSnapshot) {
    if snap.is_empty() {
        return;
    }
    REGISTRY.with(|r| r.borrow_mut().merge(snap));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        assert_eq!(bucket_index(1.0), 0);
        assert_eq!(bucket_index(1.999_999_9), 0);
        assert_eq!(bucket_index(2.0), 1);
        assert_eq!(bucket_index(4.0), 2);
        assert_eq!(bucket_index(3.999_999_9), 1);
        assert_eq!(bucket_index(0.5), -1);
        assert_eq!(bucket_index(0.499_999_99), -2);
        assert_eq!(bucket_index(1024.0), 10);
        assert_eq!(bucket_index(1023.999), 9);
    }

    #[test]
    fn bucket_degenerate_values() {
        assert_eq!(bucket_index(0.0), i64::MIN);
        assert_eq!(bucket_index(-3.0), i64::MIN);
        assert_eq!(bucket_index(f64::NAN), i64::MIN);
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 2.0), -1075, "subnormal");
        assert_eq!(bucket_index(f64::INFINITY), 1024);
        assert!((bucket_lo(3) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_moments() {
        let mut h = HistogramSnapshot::new();
        for v in [1.0, 1.5, 2.0, 7.9, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets[&0], 2, "1.0 and 1.5 share [1,2)");
        assert_eq!(h.buckets[&1], 1, "2.0 opens [2,4)");
        assert_eq!(h.buckets[&2], 1, "7.9 in [4,8)");
        assert_eq!(h.buckets[&3], 1, "8.0 opens [8,16)");
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 8.0);
        assert!((h.mean() - 20.4 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn registry_take_and_absorb_merge_commutatively() {
        let _ = take();
        counter_add("drops_queue", 2);
        gauge_set("depth", 3.0);
        observe("rtt_ms", 10.0);
        let a = take();
        counter_add("drops_queue", 1);
        counter_add("drops_loss", 4);
        gauge_set("depth", 5.0);
        observe("rtt_ms", 20.0);
        let b = take();

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is commutative");
        assert_eq!(ab.counters["drops_queue"], 3);
        assert_eq!(ab.counters["drops_loss"], 4);
        assert_eq!(ab.gauges["depth"], 5.0);
        assert_eq!(ab.histograms["rtt_ms"].count, 2);

        absorb(&ab);
        let again = take();
        assert_eq!(again, ab);
    }

    #[test]
    fn prefixed_strips_and_filters() {
        let _ = take();
        counter_add("drops_queue", 1);
        counter_add("drops_ttl", 2);
        counter_add("harq_tx", 9);
        let snap = take();
        let drops = snap.prefixed("drops_");
        assert_eq!(drops.len(), 2);
        assert_eq!(drops["queue"], 1);
        assert_eq!(drops["ttl"], 2);
    }

    #[test]
    fn interned_counters_fold_into_the_snapshot() {
        let _ = take();
        let id = register_counter("test_interned");
        let same = register_counter("test_interned");
        assert_eq!(id, same, "re-registration returns the same handle");
        id.add(2);
        same.add(3);
        counter_add("test_interned", 1); // the string API merges with it
        let snap = take();
        assert_eq!(snap.counters["test_interned"], 6);
        // The cells drained: a fresh take sees nothing.
        assert!(!take().counters.contains_key("test_interned"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let _ = take();
        counter_add("c", 1);
        gauge_set("g", 2.5);
        observe("h", 0.75);
        let snap = take();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
