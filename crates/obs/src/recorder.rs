//! The event bus: a thread-local recorder behind a zero-cost gate.
//!
//! Instrumented code calls [`emit`] unconditionally; when tracing is off
//! (the default) that is one thread-local boolean load and an early
//! return — no allocation, no branch-heavy work, nothing retained. The
//! runner flips the gate with [`set_tracing`] when `--trace` is given.
//!
//! `seq` numbers are deliberately **not** assigned at emit time: a
//! parallel sweep captures each work item's raw records on its worker
//! thread ([`drain_raw`]) and re-absorbs them on the calling thread in
//! input order ([`absorb_raw`]); [`take_records`] then numbers the
//! stitched stream 0..n, making the trace independent of the worker
//! count.

use crate::event::{Event, Record};
use std::cell::{Cell, RefCell};

/// An unsequenced event capture: `(t_ns, node, event)`.
pub type RawRecord = (u64, u64, Event);

/// Sink for trace events.
pub trait Recorder {
    /// Whether this recorder wants events at all (lets callers skip
    /// expensive event construction).
    fn enabled(&self) -> bool;
    /// Accept one event.
    fn record(&mut self, t_ns: u64, node: u64, event: Event);
    /// Surrender everything recorded so far.
    fn drain(&mut self) -> Vec<RawRecord> {
        Vec::new()
    }
}

/// The default recorder: drops everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&mut self, _t_ns: u64, _node: u64, _event: Event) {}
}

/// In-memory recorder used while tracing is enabled.
#[derive(Clone, Debug, Default)]
pub struct BufferRecorder {
    entries: Vec<RawRecord>,
}

impl BufferRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Recorder for BufferRecorder {
    fn enabled(&self) -> bool {
        true
    }
    fn record(&mut self, t_ns: u64, node: u64, event: Event) {
        self.entries.push((t_ns, node, event));
    }
    fn drain(&mut self) -> Vec<RawRecord> {
        std::mem::take(&mut self.entries)
    }
}

thread_local! {
    static TRACING: Cell<bool> = const { Cell::new(false) };
    static BUFFER: RefCell<BufferRecorder> = RefCell::new(BufferRecorder::new());
}

/// Is tracing on for this thread? Instrumentation sites can check this
/// before building events whose construction itself costs something
/// (string formatting, extra RNG draws).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.with(|t| t.get())
}

/// Turn tracing on/off for this thread. Turning it off discards anything
/// still buffered.
pub fn set_tracing(on: bool) {
    TRACING.with(|t| t.set(on));
    if !on {
        BUFFER.with(|b| b.borrow_mut().entries.clear());
    }
}

/// Record one event (no-op unless tracing is enabled).
#[inline]
pub fn emit(t_ns: u64, node: u64, event: Event) {
    if !tracing_enabled() {
        return;
    }
    BUFFER.with(|b| b.borrow_mut().record(t_ns, node, event));
}

/// Drain this thread's raw (unsequenced) records — the worker-thread half
/// of parallel capture.
pub fn drain_raw() -> Vec<RawRecord> {
    BUFFER.with(|b| b.borrow_mut().drain())
}

/// Append previously drained records to this thread's buffer — the
/// caller-thread half of parallel capture. Call in input order.
pub fn absorb_raw(records: Vec<RawRecord>) {
    if records.is_empty() {
        return;
    }
    BUFFER.with(|b| b.borrow_mut().entries.extend(records));
}

/// Drain this thread's buffer and assign final sequence numbers.
pub fn take_records() -> Vec<Record> {
    drain_raw()
        .into_iter()
        .enumerate()
        .map(|(i, (t_ns, node, event))| Record {
            seq: i as u64,
            t_ns,
            node,
            event,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropReason, Event};

    fn drop_ev(bytes: u32) -> Event {
        Event::Drop {
            reason: DropReason::Queue,
            bytes,
        }
    }

    #[test]
    fn emit_is_noop_when_disabled() {
        set_tracing(false);
        emit(1, 2, drop_ev(10));
        assert!(take_records().is_empty());
    }

    #[test]
    fn take_assigns_dense_seq() {
        set_tracing(true);
        emit(5, 1, drop_ev(1));
        emit(7, 2, drop_ev(2));
        let recs = take_records();
        set_tracing(false);
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].seq, recs[0].t_ns, recs[0].node), (0, 5, 1));
        assert_eq!((recs[1].seq, recs[1].t_ns, recs[1].node), (1, 7, 2));
    }

    #[test]
    fn absorb_preserves_order_and_renumbers() {
        set_tracing(true);
        emit(1, 1, drop_ev(1));
        let first = drain_raw();
        emit(2, 2, drop_ev(2));
        let second = drain_raw();
        absorb_raw(first);
        absorb_raw(second);
        let recs = take_records();
        set_tracing(false);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].t_ns, 1);
        assert_eq!(recs[1].t_ns, 2);
        assert_eq!(recs[1].seq, 1);
    }

    #[test]
    fn disabling_discards_buffer() {
        set_tracing(true);
        emit(1, 1, drop_ev(1));
        set_tracing(false);
        set_tracing(true);
        assert!(take_records().is_empty());
        set_tracing(false);
    }

    #[test]
    fn noop_recorder_reports_disabled() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.record(1, 1, drop_ev(1));
        assert!(r.drain().is_empty());
    }
}
