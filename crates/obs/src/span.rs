//! Span reconstruction: turn start/end event pairs back into latency
//! spans.
//!
//! [`pair_spans`] walks a record stream and matches every
//! [`Event::NasStart`] with its [`Event::NasEnd`] on the same
//! `(node, proc, imsi)` key. Nested re-entries of the same key pair
//! LIFO (innermost end closes the most recent start). A
//! [`Event::FaultNode`]`{up: false}` closes every span still open on the
//! crashed node as [`SpanOutcome::Interrupted`]; spans never closed at
//! all come back as [`SpanOutcome::Unclosed`] with zero duration.

use crate::event::{Event, NasProc, Record};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How a reconstructed span ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanOutcome {
    /// Matching end event with `ok: true`.
    Ok,
    /// Matching end event with `ok: false` (reject / failure).
    Failed,
    /// The node crashed while the span was open.
    Interrupted,
    /// The stream ended with the span still open.
    Unclosed,
}

/// One reconstructed procedure span.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    pub node: u64,
    pub proc: NasProc,
    /// The pairing key (IMSI for NAS procedures).
    pub key: u64,
    pub start_ns: u64,
    /// End timestamp; equals `start_ns` for unclosed spans.
    pub end_ns: u64,
    pub outcome: SpanOutcome,
}

impl Span {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Reconstruct spans from a record stream. Spans are returned in start
/// order.
pub fn pair_spans(records: &[Record]) -> Vec<Span> {
    let mut out: Vec<Span> = Vec::new();
    // (node, proc, key) → stack of indices into `out` still open.
    let mut open: HashMap<(u64, NasProc, u64), Vec<usize>> = HashMap::new();
    for r in records {
        match &r.event {
            Event::NasStart { proc, imsi } => {
                out.push(Span {
                    node: r.node,
                    proc: *proc,
                    key: *imsi,
                    start_ns: r.t_ns,
                    end_ns: r.t_ns,
                    outcome: SpanOutcome::Unclosed,
                });
                open.entry((r.node, *proc, *imsi))
                    .or_default()
                    .push(out.len() - 1);
            }
            Event::NasEnd { proc, imsi, ok } => {
                if let Some(stack) = open.get_mut(&(r.node, *proc, *imsi)) {
                    if let Some(i) = stack.pop() {
                        out[i].end_ns = r.t_ns;
                        out[i].outcome = if *ok {
                            SpanOutcome::Ok
                        } else {
                            SpanOutcome::Failed
                        };
                    }
                }
            }
            Event::FaultNode { node, up: false } => {
                for ((n, _, _), stack) in open.iter_mut() {
                    if n == node {
                        for i in stack.drain(..) {
                            out[i].end_ns = r.t_ns;
                            out[i].outcome = SpanOutcome::Interrupted;
                        }
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Aggregate spans into `(count, total_ns)` per procedure name — the
/// latency-breakdown view (attach = auth + session + bearer).
pub fn breakdown(spans: &[Span]) -> std::collections::BTreeMap<&'static str, (u64, u64)> {
    let mut m = std::collections::BTreeMap::new();
    for s in spans {
        let e = m.entry(s.proc.name()).or_insert((0, 0));
        e.0 += 1;
        e.1 += s.duration_ns();
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, NasProc};

    fn rec(t_ns: u64, node: u64, event: Event) -> Record {
        Record {
            seq: 0,
            t_ns,
            node,
            event,
        }
    }

    fn start(t: u64, node: u64, proc: NasProc, imsi: u64) -> Record {
        rec(t, node, Event::NasStart { proc, imsi })
    }

    fn end(t: u64, node: u64, proc: NasProc, imsi: u64, ok: bool) -> Record {
        rec(t, node, Event::NasEnd { proc, imsi, ok })
    }

    #[test]
    fn simple_pair_and_breakdown() {
        let recs = vec![
            start(100, 1, NasProc::Attach, 7),
            start(110, 1, NasProc::Auth, 7),
            end(150, 1, NasProc::Auth, 7, true),
            end(200, 1, NasProc::Attach, 7, true),
        ];
        let spans = pair_spans(&recs);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].proc, NasProc::Attach);
        assert_eq!(spans[0].duration_ns(), 100);
        assert_eq!(spans[0].outcome, SpanOutcome::Ok);
        assert_eq!(spans[1].proc, NasProc::Auth);
        assert_eq!(spans[1].duration_ns(), 40);
        let b = breakdown(&spans);
        assert_eq!(b["attach"], (1, 100));
        assert_eq!(b["auth"], (1, 40));
    }

    #[test]
    fn unclosed_span_survives_with_zero_duration() {
        let recs = vec![start(100, 1, NasProc::Attach, 7)];
        let spans = pair_spans(&recs);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].outcome, SpanOutcome::Unclosed);
        assert_eq!(spans[0].duration_ns(), 0);
    }

    #[test]
    fn nested_same_key_spans_pair_lifo() {
        // A re-attach begins before the first attach's (stale) end arrives:
        // the end closes the innermost start.
        let recs = vec![
            start(100, 1, NasProc::Attach, 7),
            start(200, 1, NasProc::Attach, 7),
            end(250, 1, NasProc::Attach, 7, true),
            end(300, 1, NasProc::Attach, 7, false),
        ];
        let spans = pair_spans(&recs);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_ns, 100);
        assert_eq!(spans[0].end_ns, 300, "outer closed by the later end");
        assert_eq!(spans[0].outcome, SpanOutcome::Failed);
        assert_eq!(spans[1].start_ns, 200);
        assert_eq!(spans[1].end_ns, 250, "inner closed first");
        assert_eq!(spans[1].outcome, SpanOutcome::Ok);
    }

    #[test]
    fn node_crash_interrupts_open_spans_on_that_node_only() {
        let recs = vec![
            start(100, 1, NasProc::Attach, 7),
            start(100, 2, NasProc::Attach, 8),
            rec(150, 1, Event::FaultNode { node: 1, up: false }),
            end(200, 2, NasProc::Attach, 8, true),
        ];
        let spans = pair_spans(&recs);
        assert_eq!(spans[0].outcome, SpanOutcome::Interrupted);
        assert_eq!(spans[0].end_ns, 150);
        assert_eq!(spans[1].outcome, SpanOutcome::Ok, "other node unaffected");
    }

    #[test]
    fn end_after_crash_does_not_resurrect() {
        let recs = vec![
            start(100, 1, NasProc::Attach, 7),
            rec(150, 1, Event::FaultNode { node: 1, up: false }),
            end(200, 1, NasProc::Attach, 7, true),
        ];
        let spans = pair_spans(&recs);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].outcome, SpanOutcome::Interrupted);
        assert_eq!(spans[0].end_ns, 150);
    }

    #[test]
    fn unmatched_end_is_ignored() {
        let recs = vec![end(200, 1, NasProc::Attach, 7, true)];
        assert!(pair_spans(&recs).is_empty());
    }
}
