//! The E-UTRA operating band table (3GPP TS 36.101 §5.5) plus the ISM bands
//! WiFi uses, so LTE and WiFi links can be built from one vocabulary.
//!
//! The paper's spectrum argument (§3.2) is that LTE's ~forty bands let a
//! rural operator pick frequencies with better propagation and higher
//! allowed power than the 2.4/5 GHz ISM bands — it names band 5 (850 MHz,
//! used by the Papua deployment), band 30 (800 MHz TV white space in the
//! paper's description) and band 31 (450 MHz). This module encodes a
//! representative slice of the table: every band the paper mentions, the
//! common FDD capacity bands, TDD bands, the unlicensed coexistence bands
//! (46/MulteFire) and CBRS (48), and the two ISM bands.

use serde::{Deserialize, Serialize};

/// Duplexing scheme of a band.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Duplex {
    /// Frequency-division duplex: paired uplink/downlink ranges.
    Fdd,
    /// Time-division duplex: one shared range.
    Tdd,
}

/// Regulatory class of a band — the axis of the paper's Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum BandClass {
    /// Exclusively licensed spectrum (traditional cellular).
    Licensed,
    /// License-by-rule / shared access (e.g. CBRS with a SAS).
    SharedLicensed,
    /// Unlicensed (ISM, 5 GHz U-NII).
    Unlicensed,
}

/// One operating band.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Band {
    /// E-UTRA band number, or a synthetic id ≥ 1000 for the WiFi ISM entries.
    pub number: u16,
    /// Human-readable name.
    pub name: &'static str,
    /// Uplink range in MHz (for TDD, equals the downlink range).
    pub uplink_mhz: (f64, f64),
    /// Downlink range in MHz.
    pub downlink_mhz: (f64, f64),
    pub duplex: Duplex,
    pub class: BandClass,
    /// Typical maximum base-station/AP EIRP permitted, dBm. For licensed
    /// rural macro bands this reflects common macro eNodeB practice; for
    /// unlicensed bands it is the regulatory EIRP cap (e.g. FCC 15.247).
    pub max_bs_eirp_dbm: f64,
    /// Maximum client transmit power, dBm (LTE power class 3 is 23 dBm).
    pub max_ue_power_dbm: f64,
}

impl Band {
    /// Center of the downlink range, MHz.
    pub fn downlink_center_mhz(&self) -> f64 {
        (self.downlink_mhz.0 + self.downlink_mhz.1) / 2.0
    }

    /// Center of the uplink range, MHz.
    pub fn uplink_center_mhz(&self) -> f64 {
        (self.uplink_mhz.0 + self.uplink_mhz.1) / 2.0
    }

    /// Width of the downlink allocation, MHz.
    pub fn downlink_width_mhz(&self) -> f64 {
        self.downlink_mhz.1 - self.downlink_mhz.0
    }

    /// True if a deployment in this band requires a license grant (and can
    /// therefore appear in the dLTE registry as an enforceable entry).
    pub fn requires_license(&self) -> bool {
        !matches!(self.class, BandClass::Unlicensed)
    }

    /// Look up a band by number. ISM pseudo-bands use 1024 (2.4 GHz) and
    /// 1051 (5 GHz).
    pub fn by_number(number: u16) -> Option<&'static Band> {
        BAND_TABLE.iter().find(|b| b.number == number)
    }

    /// All bands whose downlink center is below `mhz` — the "better
    /// propagation" selection the paper's §3.2 describes.
    pub fn below_mhz(mhz: f64) -> Vec<&'static Band> {
        BAND_TABLE
            .iter()
            .filter(|b| b.downlink_center_mhz() < mhz)
            .collect()
    }

    /// The full table.
    pub fn all() -> &'static [Band] {
        BAND_TABLE
    }
}

/// Convenience accessors for the bands the paper names.
impl Band {
    /// Band 5 (850 MHz cellular) — the Papua deployment band (§5).
    pub fn band5() -> &'static Band {
        Band::by_number(5).expect("band 5 in table")
    }

    /// Band 31 (450 MHz) — the longest-range band the paper mentions.
    pub fn band31() -> &'static Band {
        Band::by_number(31).expect("band 31 in table")
    }

    /// 2.4 GHz ISM pseudo-band (WiFi baseline).
    pub fn ism24() -> &'static Band {
        Band::by_number(1024).expect("ISM 2.4 in table")
    }

    /// 5 GHz ISM/U-NII pseudo-band (WiFi baseline).
    pub fn ism5() -> &'static Band {
        Band::by_number(1051).expect("ISM 5 in table")
    }
}

/// Representative slice of TS 36.101 Table 5.5-1 plus ISM pseudo-bands.
///
/// EIRP columns: licensed macro bands assume a 43 dBm (20 W) PA with a
/// 15 dBi sector antenna ≈ 58 dBm EIRP ceiling, which we cap at a typical
/// licensed rural figure of 55 dBm; ISM bands use the FCC point-to-multipoint
/// cap of 36 dBm EIRP (30 dBm + 6 dBi).
static BAND_TABLE: &[Band] = &[
    Band {
        number: 1,
        name: "2100 IMT",
        uplink_mhz: (1920.0, 1980.0),
        downlink_mhz: (2110.0, 2170.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 2,
        name: "1900 PCS",
        uplink_mhz: (1850.0, 1910.0),
        downlink_mhz: (1930.0, 1990.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 3,
        name: "1800 DCS",
        uplink_mhz: (1710.0, 1785.0),
        downlink_mhz: (1805.0, 1880.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 5,
        name: "850 Cellular (CLR)",
        uplink_mhz: (824.0, 849.0),
        downlink_mhz: (869.0, 894.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 7,
        name: "2600 IMT-E",
        uplink_mhz: (2500.0, 2570.0),
        downlink_mhz: (2620.0, 2690.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 8,
        name: "900 GSM",
        uplink_mhz: (880.0, 915.0),
        downlink_mhz: (925.0, 960.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 12,
        name: "700 Lower SMH",
        uplink_mhz: (699.0, 716.0),
        downlink_mhz: (729.0, 746.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 20,
        name: "800 EU Digital Dividend",
        uplink_mhz: (832.0, 862.0),
        downlink_mhz: (791.0, 821.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 28,
        name: "700 APT",
        uplink_mhz: (703.0, 748.0),
        downlink_mhz: (758.0, 803.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 30,
        name: "2300 WCS / 800 TVWS (paper usage)",
        uplink_mhz: (2305.0, 2315.0),
        downlink_mhz: (2350.0, 2360.0),
        duplex: Duplex::Fdd,
        class: BandClass::SharedLicensed,
        max_bs_eirp_dbm: 50.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 31,
        name: "450 NMT",
        uplink_mhz: (452.5, 457.5),
        downlink_mhz: (462.5, 467.5),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 38,
        name: "2600 TDD",
        uplink_mhz: (2570.0, 2620.0),
        downlink_mhz: (2570.0, 2620.0),
        duplex: Duplex::Tdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 40,
        name: "2300 TDD",
        uplink_mhz: (2300.0, 2400.0),
        downlink_mhz: (2300.0, 2400.0),
        duplex: Duplex::Tdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 41,
        name: "2500 BRS/EBS TDD",
        uplink_mhz: (2496.0, 2690.0),
        downlink_mhz: (2496.0, 2690.0),
        duplex: Duplex::Tdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 46,
        name: "5 GHz LAA/MulteFire",
        uplink_mhz: (5150.0, 5925.0),
        downlink_mhz: (5150.0, 5925.0),
        duplex: Duplex::Tdd,
        class: BandClass::Unlicensed,
        max_bs_eirp_dbm: 36.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 48,
        name: "3.5 GHz CBRS",
        uplink_mhz: (3550.0, 3700.0),
        downlink_mhz: (3550.0, 3700.0),
        duplex: Duplex::Tdd,
        class: BandClass::SharedLicensed,
        max_bs_eirp_dbm: 47.0,
        max_ue_power_dbm: 23.0,
    },
    Band {
        number: 71,
        name: "600 Digital Dividend",
        uplink_mhz: (663.0, 698.0),
        downlink_mhz: (617.0, 652.0),
        duplex: Duplex::Fdd,
        class: BandClass::Licensed,
        max_bs_eirp_dbm: 55.0,
        max_ue_power_dbm: 23.0,
    },
    // WiFi ISM pseudo-bands.
    Band {
        number: 1024,
        name: "2.4 GHz ISM (WiFi)",
        uplink_mhz: (2400.0, 2483.5),
        downlink_mhz: (2400.0, 2483.5),
        duplex: Duplex::Tdd,
        class: BandClass::Unlicensed,
        max_bs_eirp_dbm: 36.0,
        max_ue_power_dbm: 20.0,
    },
    Band {
        number: 1051,
        name: "5 GHz U-NII (WiFi)",
        uplink_mhz: (5150.0, 5850.0),
        downlink_mhz: (5150.0, 5850.0),
        duplex: Duplex::Tdd,
        class: BandClass::Unlicensed,
        max_bs_eirp_dbm: 36.0,
        max_ue_power_dbm: 20.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bands_present() {
        let b5 = Band::band5();
        assert_eq!(b5.number, 5);
        assert!((b5.downlink_center_mhz() - 881.5).abs() < 1e-9);
        assert_eq!(b5.duplex, Duplex::Fdd);
        assert!(b5.requires_license());

        let b31 = Band::band31();
        assert!(b31.downlink_center_mhz() < 500.0);
        assert!(Band::by_number(30).is_some());
    }

    #[test]
    fn ism_bands_are_unlicensed() {
        assert!(!Band::ism24().requires_license());
        assert!(!Band::ism5().requires_license());
        assert_eq!(Band::ism24().class, BandClass::Unlicensed);
    }

    #[test]
    fn fdd_bands_have_disjoint_paired_ranges() {
        for b in Band::all().iter().filter(|b| b.duplex == Duplex::Fdd) {
            let (ul, dl) = (b.uplink_mhz, b.downlink_mhz);
            assert!(ul.0 < ul.1 && dl.0 < dl.1, "band {} malformed", b.number);
            let overlap = ul.0 < dl.1 && dl.0 < ul.1;
            assert!(!overlap, "band {} UL/DL overlap", b.number);
        }
    }

    #[test]
    fn tdd_bands_share_range() {
        for b in Band::all().iter().filter(|b| b.duplex == Duplex::Tdd) {
            assert_eq!(b.uplink_mhz, b.downlink_mhz, "band {}", b.number);
        }
    }

    #[test]
    fn below_mhz_selects_propagation_bands() {
        let low = Band::below_mhz(1000.0);
        let numbers: Vec<u16> = low.iter().map(|b| b.number).collect();
        assert!(numbers.contains(&5));
        assert!(numbers.contains(&31));
        assert!(numbers.contains(&71));
        assert!(!numbers.contains(&7));
        assert!(!numbers.contains(&1024));
    }

    #[test]
    fn unknown_band_is_none() {
        assert!(Band::by_number(999).is_none());
    }

    #[test]
    fn licensed_bands_allow_more_bs_power_than_ism() {
        // The regulatory core of the paper's range argument.
        assert!(Band::band5().max_bs_eirp_dbm > Band::ism24().max_bs_eirp_dbm + 10.0);
        assert!(Band::band5().max_ue_power_dbm >= Band::ism24().max_ue_power_dbm);
    }

    #[test]
    fn band_numbers_unique() {
        let mut nums: Vec<u16> = Band::all().iter().map(|b| b.number).collect();
        nums.sort_unstable();
        let before = nums.len();
        nums.dedup();
        assert_eq!(before, nums.len());
    }
}
