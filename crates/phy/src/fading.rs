//! Shadowing and small-scale fading.
//!
//! Rural links are dominated by large-scale shadowing (terrain, vegetation)
//! rather than dense multipath, so the default model is log-normal shadowing
//! with a per-link constant component plus a slowly varying AR(1) component.
//! Fast fading is approximated by an additional mean-zero Gaussian on the dB
//! SINR, which is the usual system-level shortcut (a full Rayleigh/Jakes
//! simulator would add cost without changing any architectural conclusion).

use dlte_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Shadowing configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ShadowingConfig {
    /// Standard deviation of log-normal shadowing, dB. 8 dB is the classic
    /// macro-cell figure; rural open terrain is nearer 4–6 dB.
    pub sigma_db: f64,
    /// Decorrelation time of the time-varying component.
    pub decorrelation_s: f64,
    /// Std-dev of the fast-fading approximation, dB (0 disables).
    pub fast_sigma_db: f64,
}

impl Default for ShadowingConfig {
    fn default() -> Self {
        ShadowingConfig {
            sigma_db: 6.0,
            decorrelation_s: 5.0,
            fast_sigma_db: 0.0,
        }
    }
}

impl ShadowingConfig {
    /// No fading at all — for deterministic unit experiments.
    pub fn disabled() -> Self {
        ShadowingConfig {
            sigma_db: 0.0,
            decorrelation_s: 1.0,
            fast_sigma_db: 0.0,
        }
    }
}

/// Per-link shadowing state: a fixed location-dependent component drawn at
/// construction plus an AR(1) process sampled on demand.
#[derive(Clone, Debug)]
pub struct LinkShadowing {
    config: ShadowingConfig,
    fixed_db: f64,
    ar_state_db: f64,
    last_sample: SimTime,
    rng: SimRng,
}

impl LinkShadowing {
    /// Create the shadowing state for one link. `rng` should be a fork
    /// dedicated to this link so links are independent.
    pub fn new(config: ShadowingConfig, mut rng: SimRng) -> Self {
        // Split total variance evenly between the fixed and varying parts.
        let component_sigma = config.sigma_db / 2f64.sqrt();
        let fixed_db = if config.sigma_db > 0.0 {
            rng.normal(0.0, component_sigma)
        } else {
            0.0
        };
        LinkShadowing {
            config,
            fixed_db,
            ar_state_db: 0.0,
            last_sample: SimTime::ZERO,
            rng,
        }
    }

    /// Total fading loss (dB, positive = extra loss) at time `now`.
    pub fn sample_db(&mut self, now: SimTime) -> f64 {
        if self.config.sigma_db == 0.0 && self.config.fast_sigma_db == 0.0 {
            return 0.0;
        }
        let component_sigma = self.config.sigma_db / 2f64.sqrt();
        if self.config.sigma_db > 0.0 {
            // AR(1): rho = exp(-dt / tau); innovation keeps variance constant.
            let dt = now.saturating_since(self.last_sample).as_secs_f64();
            self.last_sample = now;
            let rho = (-dt / self.config.decorrelation_s.max(1e-9)).exp();
            let innovation_sigma = component_sigma * (1.0 - rho * rho).sqrt();
            self.ar_state_db = rho * self.ar_state_db + self.rng.normal(0.0, innovation_sigma);
        }
        let fast = if self.config.fast_sigma_db > 0.0 {
            self.rng.normal(0.0, self.config.fast_sigma_db)
        } else {
            0.0
        };
        self.fixed_db + self.ar_state_db + fast
    }

    /// The fixed (location) component, for tests and diagnostics.
    pub fn fixed_db(&self) -> f64 {
        self.fixed_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_sim::SimDuration;

    #[test]
    fn disabled_shadowing_is_zero() {
        let mut s = LinkShadowing::new(ShadowingConfig::disabled(), SimRng::new(1));
        for i in 0..10 {
            assert_eq!(s.sample_db(SimTime::from_secs(i)), 0.0);
        }
    }

    #[test]
    fn variance_matches_config() {
        // Sample many independent links at a fixed instant: the variance of
        // (fixed + AR-stationary) should approach sigma^2.
        let cfg = ShadowingConfig {
            sigma_db: 8.0,
            decorrelation_s: 5.0,
            fast_sigma_db: 0.0,
        };
        let root = SimRng::new(99);
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let n = 4000;
        for i in 0..n {
            let mut link = LinkShadowing::new(cfg, root.fork_idx("link", i));
            // Let the AR process reach stationarity via a long first step.
            let v = link.sample_db(SimTime::from_secs(10_000));
            sum += v;
            sum2 += v * v;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 8.0).abs() < 0.6, "sd {}", var.sqrt());
    }

    #[test]
    fn temporal_correlation_decays() {
        let cfg = ShadowingConfig {
            sigma_db: 8.0,
            decorrelation_s: 5.0,
            fast_sigma_db: 0.0,
        };
        let root = SimRng::new(7);
        // Correlation between consecutive samples dt apart, averaged over
        // many links; subtract the fixed component which never decorrelates.
        let corr = |dt: SimDuration| -> f64 {
            let mut num = 0.0;
            let mut den = 0.0;
            for i in 0..2000 {
                let mut link = LinkShadowing::new(cfg, root.fork_idx("c", i));
                let t0 = SimTime::from_secs(1_000);
                let a = link.sample_db(t0) - link.fixed_db();
                let b = link.sample_db(t0 + dt) - link.fixed_db();
                num += a * b;
                den += a * a;
            }
            num / den
        };
        let fast = corr(SimDuration::from_millis(100));
        let slow = corr(SimDuration::from_secs(50));
        assert!(fast > 0.9, "100ms correlation {fast}");
        assert!(slow < 0.2, "50s correlation {slow}");
    }

    #[test]
    fn fast_fading_adds_jitter() {
        let cfg = ShadowingConfig {
            sigma_db: 0.0,
            decorrelation_s: 1.0,
            fast_sigma_db: 3.0,
        };
        let mut link = LinkShadowing::new(cfg, SimRng::new(3));
        let t = SimTime::from_secs(1);
        let a = link.sample_db(t);
        let b = link.sample_db(t);
        assert_ne!(a, b, "fast fading should differ per sample");
    }
}
