//! Hybrid ARQ with chase combining.
//!
//! §3.2: *"hybrid ARQ increases throughput under weak signal conditions."*
//! The model: a transport block sent at CQI `c` fails with a block-error
//! probability given by a sigmoid around the CQI's SINR threshold. On
//! failure the block is retransmitted; with chase combining the receiver
//! adds the soft energy of all copies, so the effective SINR of attempt `k`
//! is `sinr + 10·log10(k)`. After `max_transmissions` attempts the block is
//! lost (handed to RLC/upper layers).
//!
//! Both a closed-form expectation (for fast sweeps) and a stochastic
//! per-block simulation (for the event-driven MAC) are provided.

use crate::mcs::CqiEntry;
use dlte_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Soft-combining scheme.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Combining {
    /// No combining: every attempt sees the raw SINR (plain ARQ).
    None,
    /// Chase combining: attempt `k` sees `sinr + 10·log10(k)`.
    Chase,
}

/// HARQ configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HarqConfig {
    /// Maximum transmissions per block (LTE default: 4).
    pub max_transmissions: u8,
    /// Sigmoid slope of the BLER curve, dB. Smaller = sharper waterfall.
    pub bler_slope_db: f64,
    pub combining: Combining,
}

impl Default for HarqConfig {
    fn default() -> Self {
        HarqConfig {
            max_transmissions: 4,
            bler_slope_db: 0.6,
            combining: Combining::Chase,
        }
    }
}

impl HarqConfig {
    /// Plain single-shot transmission (HARQ disabled) — the baseline in E3.
    pub fn disabled() -> Self {
        HarqConfig {
            max_transmissions: 1,
            bler_slope_db: 0.6,
            combining: Combining::None,
        }
    }
}

/// Block-error probability of a single attempt at `sinr_db` for a CQI whose
/// 10%-BLER threshold is `threshold_db`.
///
/// Sigmoid calibrated so that BLER = 10% exactly at the threshold:
/// `1 / (1 + exp((sinr - thr - b)/s))` with `b = s·ln(9)` shifting the 50%
/// point below the threshold.
pub fn bler(sinr_db: f64, threshold_db: f64, slope_db: f64) -> f64 {
    let s = slope_db.max(1e-6);
    let b = s * 9f64.ln();
    1.0 / (1.0 + ((sinr_db - threshold_db + b) / s).exp())
}

/// Closed-form statistics of a HARQ process at a given SINR/CQI operating
/// point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HarqStats {
    /// Probability the block is delivered within the transmission budget.
    pub delivery_prob: f64,
    /// Expected number of transmissions spent per block (delivered or not).
    pub expected_transmissions: f64,
    /// Residual BLER after all attempts.
    pub residual_bler: f64,
    /// Fraction of the nominal single-shot rate actually delivered:
    /// `delivery_prob / expected_transmissions`.
    pub efficiency: f64,
}

/// Outcome of one stochastically simulated block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HarqOutcome {
    pub delivered: bool,
    /// Transmissions actually used (1..=max).
    pub transmissions: u8,
}

/// The HARQ process model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HarqProcessModel {
    pub config: HarqConfig,
}

impl HarqProcessModel {
    pub fn new(config: HarqConfig) -> Self {
        HarqProcessModel { config }
    }

    /// Effective SINR seen by attempt `k` (1-based).
    fn attempt_sinr_db(&self, sinr_db: f64, k: u8) -> f64 {
        match self.config.combining {
            Combining::None => sinr_db,
            Combining::Chase => sinr_db + 10.0 * (k as f64).log10(),
        }
    }

    /// Per-attempt failure probability, *conditioned on all previous attempts
    /// failing* (chase combining makes later attempts easier).
    fn attempt_bler(&self, sinr_db: f64, cqi: &CqiEntry, k: u8) -> f64 {
        bler(
            self.attempt_sinr_db(sinr_db, k),
            cqi.sinr_threshold_db,
            self.config.bler_slope_db,
        )
    }

    /// Closed-form expectation over the attempt tree.
    pub fn stats(&self, sinr_db: f64, cqi: &CqiEntry) -> HarqStats {
        let max = self.config.max_transmissions.max(1);
        let mut p_all_failed_so_far = 1.0;
        let mut delivery_prob = 0.0;
        let mut expected_tx = 0.0;
        for k in 1..=max {
            // We spend transmission k iff the first k-1 all failed.
            expected_tx += p_all_failed_so_far;
            let p_fail_k = self.attempt_bler(sinr_db, cqi, k);
            let p_success_here = p_all_failed_so_far * (1.0 - p_fail_k);
            delivery_prob += p_success_here;
            p_all_failed_so_far *= p_fail_k;
        }
        HarqStats {
            delivery_prob,
            expected_transmissions: expected_tx,
            residual_bler: p_all_failed_so_far,
            efficiency: if expected_tx > 0.0 {
                delivery_prob / expected_tx
            } else {
                0.0
            },
        }
    }

    /// Goodput in bits/s for a full grid of `n_prb` PRBs at this operating
    /// point (1000 subframes/s, HARQ efficiency applied).
    pub fn goodput_bps(&self, sinr_db: f64, cqi: &CqiEntry, n_prb: u32) -> f64 {
        crate::mcs::peak_throughput_bps(cqi, n_prb) * self.stats(sinr_db, cqi).efficiency
    }

    /// Simulate one block stochastically.
    pub fn simulate_block(&self, sinr_db: f64, cqi: &CqiEntry, rng: &mut SimRng) -> HarqOutcome {
        let max = self.config.max_transmissions.max(1);
        for k in 1..=max {
            if !rng.chance(self.attempt_bler(sinr_db, cqi, k)) {
                return HarqOutcome {
                    delivered: true,
                    transmissions: k,
                };
            }
        }
        HarqOutcome {
            delivered: false,
            transmissions: max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcs::CQI_TABLE;

    #[test]
    fn bler_is_ten_percent_at_threshold() {
        let b = bler(10.0, 10.0, 0.6);
        assert!((b - 0.10).abs() < 1e-9, "got {b}");
        // Well above threshold → near zero; well below → near one.
        assert!(bler(20.0, 10.0, 0.6) < 1e-6);
        assert!(bler(0.0, 10.0, 0.6) > 0.999);
    }

    #[test]
    fn bler_monotone_decreasing_in_sinr() {
        let mut prev = 1.1;
        for snr in [-5.0, 0.0, 5.0, 9.0, 10.0, 11.0, 15.0] {
            let b = bler(snr, 10.0, 0.6);
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn stats_at_operating_point() {
        // At the CQI's own threshold (10% first-attempt BLER), chase HARQ
        // should deliver essentially everything within 4 attempts.
        let m = HarqProcessModel::new(HarqConfig::default());
        let cqi = &CQI_TABLE[8]; // CQI 9
        let s = m.stats(cqi.sinr_threshold_db, cqi);
        assert!(s.delivery_prob > 0.999, "delivery {}", s.delivery_prob);
        assert!(
            s.expected_transmissions < 1.2,
            "E[tx] {}",
            s.expected_transmissions
        );
        assert!(s.residual_bler < 1e-3);
    }

    #[test]
    fn harq_beats_no_harq_below_threshold_paper_claim() {
        // 2 dB below threshold — "weak signal conditions" (§3.2).
        let cqi = &CQI_TABLE[8];
        let weak = cqi.sinr_threshold_db - 2.0;
        let harq = HarqProcessModel::new(HarqConfig::default());
        let none = HarqProcessModel::new(HarqConfig::disabled());
        let g_harq = harq.goodput_bps(weak, cqi, 50);
        let g_none = none.goodput_bps(weak, cqi, 50);
        assert!(
            g_harq > 2.0 * g_none,
            "HARQ {g_harq:.0} vs none {g_none:.0}"
        );
    }

    #[test]
    fn harq_costs_little_at_high_sinr() {
        let cqi = &CQI_TABLE[8];
        let strong = cqi.sinr_threshold_db + 5.0;
        let harq = HarqProcessModel::new(HarqConfig::default());
        let none = HarqProcessModel::new(HarqConfig::disabled());
        let ratio = harq.goodput_bps(strong, cqi, 50) / none.goodput_bps(strong, cqi, 50);
        assert!((ratio - 1.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn chase_combining_outperforms_plain_arq() {
        let cqi = &CQI_TABLE[8];
        let weak = cqi.sinr_threshold_db - 3.0;
        let chase = HarqProcessModel::new(HarqConfig::default());
        let plain = HarqProcessModel::new(HarqConfig {
            combining: Combining::None,
            ..HarqConfig::default()
        });
        let sc = chase.stats(weak, cqi);
        let sp = plain.stats(weak, cqi);
        assert!(sc.delivery_prob > sp.delivery_prob);
        assert!(sc.residual_bler < sp.residual_bler);
    }

    #[test]
    fn expected_transmissions_bounded() {
        let m = HarqProcessModel::new(HarqConfig::default());
        let cqi = &CQI_TABLE[0];
        for snr in [-30.0, -6.7, 0.0, 30.0] {
            let s = m.stats(snr, cqi);
            assert!(s.expected_transmissions >= 1.0);
            assert!(s.expected_transmissions <= 4.0);
            assert!((0.0..=1.0).contains(&s.delivery_prob));
            assert!((s.delivery_prob + s.residual_bler - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn simulation_agrees_with_closed_form() {
        let m = HarqProcessModel::new(HarqConfig::default());
        let cqi = &CQI_TABLE[8];
        let snr = cqi.sinr_threshold_db - 1.5;
        let expected = m.stats(snr, cqi);
        let mut rng = SimRng::new(1234);
        let n = 20_000;
        let mut delivered = 0u32;
        let mut tx_total = 0u64;
        for _ in 0..n {
            let o = m.simulate_block(snr, cqi, &mut rng);
            if o.delivered {
                delivered += 1;
            }
            tx_total += o.transmissions as u64;
        }
        let p = delivered as f64 / n as f64;
        let etx = tx_total as f64 / n as f64;
        assert!(
            (p - expected.delivery_prob).abs() < 0.01,
            "{p} vs {}",
            expected.delivery_prob
        );
        assert!(
            (etx - expected.expected_transmissions).abs() < 0.03,
            "{etx} vs {}",
            expected.expected_transmissions
        );
    }
}
