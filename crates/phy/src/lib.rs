//! # dlte-phy — radio physical-layer models
//!
//! Everything the dLTE reproduction needs to know about radio, with no radio
//! hardware: the 3GPP E-UTRA band table (including the rural bands the paper
//! names — 5, 30, 31), path-loss and shadowing models, link budgets,
//! CQI → MCS → spectral-efficiency mapping, the SC-FDMA vs OFDM waveform
//! power model behind the paper's uplink-range claim, a hybrid-ARQ model with
//! chase combining, and the 802.11 OFDM PHY used by the WiFi baselines.
//!
//! ## Fidelity
//!
//! These are *link-abstraction* models of the kind used in system-level LTE
//! simulators (SINR in, block-error probability and spectral efficiency out),
//! not symbol-level DSP. That is the right altitude for the paper's claims,
//! which are about architecture and link budgets, not coding theory:
//!
//! * path loss: free-space, log-distance, and Okumura-Hata (the standard
//!   empirical model for the sub-2 GHz macro cells dLTE targets);
//! * rate mapping: the 3GPP CQI table (36.213) selected by SINR threshold,
//!   with an attenuated-Shannon sanity envelope;
//! * HARQ: per-transmission BLER from an SINR-offset sigmoid, chase
//!   combining adds received energy across attempts;
//! * SC-FDMA vs OFDM: modeled as a difference in power-amplifier backoff,
//!   which is exactly the mechanism the paper invokes ("higher power
//!   transmission and greater range from mobile devices").

pub mod band;
pub mod fading;
pub mod harq;
pub mod link;
pub mod mcs;
pub mod propagation;
pub mod units;
pub mod waveform;
pub mod wifi;

pub use band::{Band, BandClass, Duplex};
pub use harq::{HarqConfig, HarqOutcome, HarqProcessModel};
pub use link::{LinkBudget, RadioConfig};
pub use mcs::{CqiEntry, CQI_TABLE};
pub use propagation::{Environment, PathLossModel};
pub use units::{db_to_linear, dbm_to_mw, linear_to_db, mw_to_dbm};
pub use waveform::{Waveform, LTE_BANDWIDTHS};
