//! Link budgets.
//!
//! Combines transmit power, antenna gains, losses, path loss and receiver
//! noise into SNR — the number every rate decision in the stack consumes.
//! Presets match the paper's prototype (§5): a commercial eNodeB with 15 dBi
//! antennas on a gym roof, off-the-shelf handsets, and a WiFi AP/client pair
//! constrained by ISM-band EIRP rules.

use crate::propagation::PathLossModel;
use crate::units::thermal_noise_dbm;
use crate::waveform::Waveform;
use serde::{Deserialize, Serialize};

/// One end of a radio link.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RadioConfig {
    /// Power-amplifier saturation power, dBm (waveform backoff is applied
    /// on top of this when transmitting).
    pub pa_saturation_dbm: f64,
    /// Regulatory conducted-power limit, dBm.
    pub regulatory_max_dbm: f64,
    /// Antenna gain, dBi.
    pub antenna_gain_dbi: f64,
    /// Cable/connector loss, dB.
    pub cable_loss_db: f64,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// Antenna height above ground, m (feeds the propagation model).
    pub height_m: f64,
    /// Waveform used when this end transmits.
    pub tx_waveform: Waveform,
}

impl RadioConfig {
    /// The paper's prototype base station: commercial eNodeB (~20 W PA),
    /// 15 dBi sector antenna (§5), tower/roof mount.
    pub fn rural_enodeb() -> Self {
        RadioConfig {
            pa_saturation_dbm: 44.0,
            regulatory_max_dbm: 43.0,
            antenna_gain_dbi: 15.0,
            cable_loss_db: 1.0,
            noise_figure_db: 5.0,
            height_m: 30.0,
            tx_waveform: Waveform::Ofdm,
        }
    }

    /// An off-the-shelf LTE handset: power class 3 (23 dBm), SC-FDMA uplink.
    pub fn lte_handset() -> Self {
        RadioConfig {
            pa_saturation_dbm: 26.0,
            regulatory_max_dbm: 23.0,
            antenna_gain_dbi: 0.0,
            cable_loss_db: 0.0,
            noise_figure_db: 7.0,
            height_m: 1.5,
            tx_waveform: Waveform::ScFdma,
        }
    }

    /// A hypothetical handset forced to use OFDM uplink — the counterfactual
    /// in the SC-FDMA experiment (E2). Identical hardware, different waveform.
    pub fn ofdm_handset() -> Self {
        RadioConfig {
            tx_waveform: Waveform::Ofdm,
            ..Self::lte_handset()
        }
    }

    /// An outdoor WiFi AP at the FCC point-to-multipoint limit
    /// (30 dBm conducted + 6 dBi).
    pub fn wifi_ap() -> Self {
        RadioConfig {
            pa_saturation_dbm: 32.0,
            regulatory_max_dbm: 30.0,
            antenna_gain_dbi: 6.0,
            cable_loss_db: 0.5,
            noise_figure_db: 6.0,
            height_m: 10.0,
            tx_waveform: Waveform::Ofdm,
        }
    }

    /// A WiFi client device (laptop/phone class, ~18 dBm).
    pub fn wifi_client() -> Self {
        RadioConfig {
            pa_saturation_dbm: 21.0,
            regulatory_max_dbm: 18.0,
            antenna_gain_dbi: 0.0,
            cable_loss_db: 0.0,
            noise_figure_db: 7.0,
            height_m: 1.5,
            tx_waveform: Waveform::Ofdm,
        }
    }

    /// Effective radiated power when this end transmits, dBm EIRP.
    pub fn eirp_dbm(&self) -> f64 {
        self.tx_waveform
            .effective_tx_power_dbm(self.pa_saturation_dbm, self.regulatory_max_dbm)
            + self.antenna_gain_dbi
            - self.cable_loss_db
    }
}

/// A directional link budget: `tx` transmitting toward `rx`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkBudget {
    pub tx: RadioConfig,
    pub rx: RadioConfig,
    pub model: PathLossModel,
    /// Carrier frequency, MHz.
    pub freq_mhz: f64,
    /// Receiver bandwidth, Hz (sets the noise floor).
    pub bandwidth_hz: f64,
}

impl LinkBudget {
    /// Received power at `dist_km`, dBm (before fading).
    pub fn rx_power_dbm(&self, dist_km: f64) -> f64 {
        self.eirp_dbm() - self.model.path_loss_db(self.freq_mhz, dist_km) + self.rx.antenna_gain_dbi
            - self.rx.cable_loss_db
    }

    /// Transmit EIRP, dBm.
    pub fn eirp_dbm(&self) -> f64 {
        self.tx.eirp_dbm()
    }

    /// Receiver noise floor, dBm (thermal + noise figure).
    pub fn noise_floor_dbm(&self) -> f64 {
        thermal_noise_dbm(self.bandwidth_hz) + self.rx.noise_figure_db
    }

    /// SNR at `dist_km`, dB, with an optional extra fading loss.
    pub fn snr_db(&self, dist_km: f64, fading_loss_db: f64) -> f64 {
        self.rx_power_dbm(dist_km) - fading_loss_db - self.noise_floor_dbm()
    }

    /// Maximum coupling loss the link supports while keeping SNR at or above
    /// `min_snr_db` (system gain), dB.
    pub fn max_coupling_loss_db(&self, min_snr_db: f64) -> f64 {
        self.eirp_dbm() + self.rx.antenna_gain_dbi
            - self.rx.cable_loss_db
            - self.noise_floor_dbm()
            - min_snr_db
    }

    /// Greatest range (km) at which SNR stays at or above `min_snr_db`,
    /// ignoring fading margin (subtract a margin from `min_snr_db` to add
    /// one). The maximum coupling loss *is* the path-loss allowance: receive
    /// antenna gain is already part of it.
    pub fn range_km(&self, min_snr_db: f64) -> f64 {
        self.model
            .range_km_for_loss(self.freq_mhz, self.max_coupling_loss_db(min_snr_db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::band::Band;
    use crate::propagation::PathLossModel;

    fn lte_downlink(dist_model: PathLossModel) -> LinkBudget {
        LinkBudget {
            tx: RadioConfig::rural_enodeb(),
            rx: RadioConfig::lte_handset(),
            model: dist_model,
            freq_mhz: Band::band5().downlink_center_mhz(),
            bandwidth_hz: 10e6,
        }
    }

    #[test]
    fn eirp_compositions() {
        // eNodeB: 43 dBm (clamped from 44-3.5 OFDM backoff? no: min(44-3.5,43)=40.5)
        // — PA saturation 44 with 3.5 dB OFDM backoff gives 40.5 dBm conducted,
        // under the 43 dBm regulatory cap; +15 dBi −1 dB cable = 54.5 EIRP.
        let enb = RadioConfig::rural_enodeb();
        assert!((enb.eirp_dbm() - 54.5).abs() < 1e-9);
        // Handset SC-FDMA: min(26-1, 23)=23, no antenna gain.
        let ue = RadioConfig::lte_handset();
        assert!((ue.eirp_dbm() - 23.0).abs() < 1e-9);
        // Same handset on OFDM loses 0.5 dB (26-3.5=22.5 < 23 cap).
        let ue_ofdm = RadioConfig::ofdm_handset();
        assert!((ue.eirp_dbm() - ue_ofdm.eirp_dbm() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn snr_decreases_with_distance() {
        let lb = lte_downlink(PathLossModel::rural_macro());
        let mut prev = f64::INFINITY;
        for d in [0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
            let snr = lb.snr_db(d, 0.0);
            assert!(snr < prev);
            prev = snr;
        }
    }

    #[test]
    fn fading_subtracts_directly() {
        let lb = lte_downlink(PathLossModel::rural_macro());
        let clean = lb.snr_db(5.0, 0.0);
        let faded = lb.snr_db(5.0, 7.0);
        assert!((clean - faded - 7.0).abs() < 1e-9);
    }

    #[test]
    fn range_inversion_consistent_with_snr() {
        let lb = lte_downlink(PathLossModel::rural_macro());
        let r = lb.range_km(0.0);
        assert!(r > 1.0, "rural 850 MHz cell should exceed 1 km, got {r}");
        // At exactly the computed range, SNR ≈ the threshold.
        assert!(
            (lb.snr_db(r, 0.0) - 0.0).abs() < 0.05,
            "snr at range {}",
            lb.snr_db(r, 0.0)
        );
        // The same identity must hold when the *receiver* has antenna gain
        // (the uplink toward a sectored eNodeB) — this is the regression
        // guard for a double-counting bug where range_km subtracted the rx
        // gain back out of the coupling loss.
        let ul = LinkBudget {
            tx: RadioConfig::lte_handset(),
            rx: RadioConfig::rural_enodeb(),
            model: PathLossModel::rural_macro(),
            freq_mhz: Band::band5().uplink_center_mhz(),
            bandwidth_hz: 10e6,
        };
        let r = ul.range_km(-6.7);
        assert!(
            (ul.snr_db(r, 0.0) - -6.7).abs() < 0.05,
            "uplink snr at range {}",
            ul.snr_db(r, 0.0)
        );
        // Band-5 rural uplink reaches well past 10 km at cell-edge MCS — the
        // GSM-era rural macro regime.
        assert!((12.0..30.0).contains(&r), "uplink range {r} km");
    }

    #[test]
    fn lte_band5_outranges_wifi_paper_core_claim() {
        // Downlink comparison at the lowest usable SNR of each system
        // (LTE CQI1 at -6.7 dB; WiFi MCS0 at ~4 dB).
        let lte = lte_downlink(PathLossModel::rural_macro());
        let wifi = LinkBudget {
            tx: RadioConfig::wifi_ap(),
            rx: RadioConfig::wifi_client(),
            model: PathLossModel::rural_macro(),
            freq_mhz: Band::ism24().downlink_center_mhz(),
            bandwidth_hz: 20e6,
        };
        let lte_range = lte.range_km(-6.7);
        let wifi_range = wifi.range_km(4.0);
        assert!(
            lte_range > 3.0 * wifi_range,
            "LTE {lte_range:.2} km vs WiFi {wifi_range:.2} km"
        );
    }

    #[test]
    fn uplink_is_the_limiting_direction() {
        // The classic asymmetry: handset uplink supports less coupling loss
        // than eNodeB downlink even with SC-FDMA.
        let dl = lte_downlink(PathLossModel::rural_macro());
        let ul = LinkBudget {
            tx: RadioConfig::lte_handset(),
            rx: RadioConfig::rural_enodeb(),
            model: PathLossModel::rural_macro(),
            freq_mhz: Band::band5().uplink_center_mhz(),
            bandwidth_hz: 10e6,
        };
        assert!(dl.max_coupling_loss_db(0.0) > ul.max_coupling_loss_db(0.0));
    }

    #[test]
    fn scfdma_extends_uplink_range() {
        let mk = |ue: RadioConfig| LinkBudget {
            tx: ue,
            rx: RadioConfig::rural_enodeb(),
            model: PathLossModel::rural_macro(),
            freq_mhz: Band::band5().uplink_center_mhz(),
            bandwidth_hz: 10e6,
        };
        let sc = mk(RadioConfig::lte_handset()).range_km(-6.7);
        let ofdm = mk(RadioConfig::ofdm_handset()).range_km(-6.7);
        assert!(sc > ofdm, "SC-FDMA {sc} km vs OFDM {ofdm} km");
    }

    #[test]
    fn noise_floor_tracks_bandwidth() {
        let lb10 = lte_downlink(PathLossModel::FreeSpace);
        let mut lb20 = lb10;
        lb20.bandwidth_hz = 20e6;
        assert!((lb20.noise_floor_dbm() - lb10.noise_floor_dbm() - 3.01).abs() < 0.01);
    }
}
