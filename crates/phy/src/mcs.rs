//! CQI / MCS tables and the SINR → spectral-efficiency link abstraction.
//!
//! The CQI table is 3GPP TS 36.213 Table 7.2.3-1 (the 4-bit wideband CQI
//! alphabet), paired with per-CQI SINR thresholds at the standard 10% BLER
//! operating point, taken from published link-level curves. An attenuated
//! Shannon bound is provided as a sanity envelope: the tabulated
//! efficiencies must (and do) sit below it.

use crate::units::db_to_linear;
use serde::{Deserialize, Serialize};

/// Modulation scheme of a CQI entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Modulation {
    Qpsk,
    Qam16,
    Qam64,
}

impl Modulation {
    /// Bits per modulation symbol.
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Modulation::Qpsk => 2,
            Modulation::Qam16 => 4,
            Modulation::Qam64 => 6,
        }
    }
}

/// One row of the CQI table.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CqiEntry {
    /// CQI index, 1–15 (0 = out of range, not represented here).
    pub cqi: u8,
    pub modulation: Modulation,
    /// Code rate × 1024.
    pub code_rate_x1024: u16,
    /// Spectral efficiency, bits per resource element.
    pub efficiency: f64,
    /// SINR (dB) at which this CQI meets the 10% BLER target.
    pub sinr_threshold_db: f64,
}

/// TS 36.213 Table 7.2.3-1 with 10%-BLER SINR thresholds.
pub const CQI_TABLE: [CqiEntry; 15] = [
    CqiEntry {
        cqi: 1,
        modulation: Modulation::Qpsk,
        code_rate_x1024: 78,
        efficiency: 0.1523,
        sinr_threshold_db: -6.7,
    },
    CqiEntry {
        cqi: 2,
        modulation: Modulation::Qpsk,
        code_rate_x1024: 120,
        efficiency: 0.2344,
        sinr_threshold_db: -4.7,
    },
    CqiEntry {
        cqi: 3,
        modulation: Modulation::Qpsk,
        code_rate_x1024: 193,
        efficiency: 0.3770,
        sinr_threshold_db: -2.3,
    },
    CqiEntry {
        cqi: 4,
        modulation: Modulation::Qpsk,
        code_rate_x1024: 308,
        efficiency: 0.6016,
        sinr_threshold_db: 0.2,
    },
    CqiEntry {
        cqi: 5,
        modulation: Modulation::Qpsk,
        code_rate_x1024: 449,
        efficiency: 0.8770,
        sinr_threshold_db: 2.4,
    },
    CqiEntry {
        cqi: 6,
        modulation: Modulation::Qpsk,
        code_rate_x1024: 602,
        efficiency: 1.1758,
        sinr_threshold_db: 4.3,
    },
    CqiEntry {
        cqi: 7,
        modulation: Modulation::Qam16,
        code_rate_x1024: 378,
        efficiency: 1.4766,
        sinr_threshold_db: 5.9,
    },
    CqiEntry {
        cqi: 8,
        modulation: Modulation::Qam16,
        code_rate_x1024: 490,
        efficiency: 1.9141,
        sinr_threshold_db: 8.1,
    },
    CqiEntry {
        cqi: 9,
        modulation: Modulation::Qam16,
        code_rate_x1024: 616,
        efficiency: 2.4063,
        sinr_threshold_db: 10.3,
    },
    CqiEntry {
        cqi: 10,
        modulation: Modulation::Qam64,
        code_rate_x1024: 466,
        efficiency: 2.7305,
        sinr_threshold_db: 11.7,
    },
    CqiEntry {
        cqi: 11,
        modulation: Modulation::Qam64,
        code_rate_x1024: 567,
        efficiency: 3.3223,
        sinr_threshold_db: 14.1,
    },
    CqiEntry {
        cqi: 12,
        modulation: Modulation::Qam64,
        code_rate_x1024: 666,
        efficiency: 3.9023,
        sinr_threshold_db: 16.3,
    },
    CqiEntry {
        cqi: 13,
        modulation: Modulation::Qam64,
        code_rate_x1024: 772,
        efficiency: 4.5234,
        sinr_threshold_db: 18.7,
    },
    CqiEntry {
        cqi: 14,
        modulation: Modulation::Qam64,
        code_rate_x1024: 873,
        efficiency: 5.1152,
        sinr_threshold_db: 21.0,
    },
    CqiEntry {
        cqi: 15,
        modulation: Modulation::Qam64,
        code_rate_x1024: 948,
        efficiency: 5.5547,
        sinr_threshold_db: 22.7,
    },
];

/// Resource elements per PRB per 1 ms subframe (12 subcarriers × 14 symbols).
pub const RE_PER_PRB_SUBFRAME: u32 = 168;

/// Fraction of resource elements consumed by reference signals and control
/// channels (PDCCH/PCFICH/PHICH + CRS), a typical system-level figure.
pub const OVERHEAD_FRACTION: f64 = 0.25;

/// Select the highest CQI whose 10%-BLER threshold is at or below `sinr_db`.
/// Returns `None` when even CQI 1 cannot be sustained (out of range).
pub fn select_cqi(sinr_db: f64) -> Option<&'static CqiEntry> {
    CQI_TABLE
        .iter()
        .rev()
        .find(|e| sinr_db >= e.sinr_threshold_db)
}

/// Spectral efficiency (bits/RE) achieved at `sinr_db` by CQI selection;
/// zero if out of range.
pub fn efficiency_at(sinr_db: f64) -> f64 {
    select_cqi(sinr_db).map_or(0.0, |e| e.efficiency)
}

/// Attenuated Shannon bound used as a sanity envelope: `alpha·log2(1+snr)`
/// capped at the table maximum. `alpha` ≈ 0.75 matches LTE link-level
/// results (implementation loss of modems and finite block lengths).
pub fn shannon_efficiency(sinr_db: f64, alpha: f64) -> f64 {
    let cap = CQI_TABLE[14].efficiency;
    (alpha * (1.0 + db_to_linear(sinr_db)).log2()).min(cap)
}

/// Transport-block bits carried by `n_prb` PRBs in one subframe at `cqi`,
/// after control/RS overhead.
pub fn transport_block_bits(cqi: &CqiEntry, n_prb: u32) -> u64 {
    let data_re = RE_PER_PRB_SUBFRAME as f64 * (1.0 - OVERHEAD_FRACTION);
    (cqi.efficiency * data_re * n_prb as f64).floor() as u64
}

/// Peak PHY throughput in bits/s for a full grid of `n_prb` PRBs at `cqi`
/// (1000 subframes per second).
pub fn peak_throughput_bps(cqi: &CqiEntry, n_prb: u32) -> f64 {
    transport_block_bits(cqi, n_prb) as f64 * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_monotone() {
        for w in CQI_TABLE.windows(2) {
            assert!(w[1].efficiency > w[0].efficiency);
            assert!(w[1].sinr_threshold_db > w[0].sinr_threshold_db);
            assert!(w[1].cqi == w[0].cqi + 1);
        }
    }

    #[test]
    fn efficiencies_match_modulation_times_rate() {
        for e in &CQI_TABLE {
            let expected =
                e.modulation.bits_per_symbol() as f64 * e.code_rate_x1024 as f64 / 1024.0;
            assert!(
                (e.efficiency - expected).abs() < 0.01,
                "CQI {} efficiency {} vs {}",
                e.cqi,
                e.efficiency,
                expected
            );
        }
    }

    #[test]
    fn table_sits_below_shannon() {
        // Each threshold/efficiency pair must be information-theoretically
        // possible: efficiency < log2(1 + snr_linear) at its own threshold.
        for e in &CQI_TABLE {
            let shannon = (1.0 + db_to_linear(e.sinr_threshold_db)).log2();
            assert!(
                e.efficiency < shannon,
                "CQI {} violates Shannon: {} >= {}",
                e.cqi,
                e.efficiency,
                shannon
            );
        }
    }

    #[test]
    fn cqi_selection() {
        assert!(select_cqi(-10.0).is_none(), "below CQI1 threshold");
        assert_eq!(select_cqi(-6.7).unwrap().cqi, 1);
        assert_eq!(select_cqi(0.0).unwrap().cqi, 3);
        assert_eq!(select_cqi(10.3).unwrap().cqi, 9);
        assert_eq!(select_cqi(30.0).unwrap().cqi, 15);
        assert_eq!(efficiency_at(-20.0), 0.0);
        assert!((efficiency_at(30.0) - 5.5547).abs() < 1e-9);
    }

    #[test]
    fn peak_rates_are_sane() {
        // 10 MHz (50 PRB) at CQI 15: spec peak is ~36 Mbit/s for SISO with
        // overhead; our model should land in the 30–40 Mbit/s window.
        let peak = peak_throughput_bps(&CQI_TABLE[14], 50);
        assert!(
            (30e6..42e6).contains(&peak),
            "10 MHz SISO peak {peak} out of window"
        );
        // 1.4 MHz (6 PRB) at CQI 1 is a few tens of kbit/s.
        let floor = peak_throughput_bps(&CQI_TABLE[0], 6);
        assert!((50e3..200e3).contains(&floor), "floor {floor}");
    }

    #[test]
    fn shannon_envelope_caps() {
        assert_eq!(shannon_efficiency(100.0, 0.75), CQI_TABLE[14].efficiency);
        assert!(shannon_efficiency(0.0, 0.75) > 0.0);
        // CQI selection never exceeds the alpha=1 Shannon envelope.
        for snr in [-5.0, 0.0, 5.0, 10.0, 15.0, 20.0, 25.0] {
            assert!(efficiency_at(snr) <= (1.0 + db_to_linear(snr)).log2());
        }
    }

    #[test]
    fn transport_block_scales_linearly_in_prb() {
        let one = transport_block_bits(&CQI_TABLE[9], 1);
        let fifty = transport_block_bits(&CQI_TABLE[9], 50);
        assert!(fifty >= one * 49 && fifty <= one * 51);
    }
}
