//! Path-loss models.
//!
//! The paper's range claims live or die on propagation: §3.2 argues LTE's
//! sub-GHz bands propagate far better than 2.4/5 GHz ISM. We provide the
//! standard empirical toolkit:
//!
//! * **Free space** (Friis) — lower bound, used for sanity checks;
//! * **Log-distance** — free space to a reference distance, then a settable
//!   exponent; handy for controlled experiments;
//! * **Okumura-Hata** (with the COST-231 extension above 1.5 GHz) — the
//!   classic macro-cell model, with urban / suburban / open(rural)
//!   corrections. This is the model used by every experiment that sweeps
//!   distance, because the dLTE deployment story is exactly Hata's regime:
//!   a tall base station (grain silo, gym roof) and low handsets.
//!
//! All models return loss in dB for a carrier in MHz and a distance in km.

use serde::{Deserialize, Serialize};

/// Deployment environment for the empirical models.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Environment {
    Urban,
    Suburban,
    /// Open/rural — the paper's target environment.
    RuralOpen,
}

/// A path-loss model.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum PathLossModel {
    /// Friis free-space loss.
    FreeSpace,
    /// Free space up to `ref_m` meters, then `10·n·log10(d/ref)` beyond it.
    LogDistance { exponent: f64, ref_m: f64 },
    /// Okumura-Hata / COST-231-Hata with environment correction.
    Hata {
        environment: Environment,
        /// Base-station effective antenna height, m (valid 30–200).
        bs_height_m: f64,
        /// Mobile antenna height, m (valid 1–10).
        ue_height_m: f64,
    },
}

impl PathLossModel {
    /// The model used throughout the dLTE experiments: Hata, rural/open,
    /// 30 m tower, 1.5 m handset.
    pub fn rural_macro() -> Self {
        PathLossModel::Hata {
            environment: Environment::RuralOpen,
            bs_height_m: 30.0,
            ue_height_m: 1.5,
        }
    }

    /// Path loss in dB at `dist_km` for a carrier at `freq_mhz`.
    ///
    /// Distances are floored at 1 m so the math never produces negative loss
    /// for co-located radios; Hata inputs are clamped into the model's
    /// validity ranges rather than extrapolated wildly.
    pub fn path_loss_db(&self, freq_mhz: f64, dist_km: f64) -> f64 {
        let dist_km = dist_km.max(0.001);
        match *self {
            PathLossModel::FreeSpace => free_space_db(freq_mhz, dist_km),
            PathLossModel::LogDistance { exponent, ref_m } => {
                let ref_km = (ref_m / 1000.0).max(0.001);
                let fs_ref = free_space_db(freq_mhz, ref_km);
                if dist_km <= ref_km {
                    free_space_db(freq_mhz, dist_km)
                } else {
                    fs_ref + 10.0 * exponent * (dist_km / ref_km).log10()
                }
            }
            PathLossModel::Hata {
                environment,
                bs_height_m,
                ue_height_m,
            } => hata_db(freq_mhz, dist_km, bs_height_m, ue_height_m, environment),
        }
    }

    /// Invert the model: greatest distance (km) at which loss does not exceed
    /// `max_loss_db`. Bisection; all our models are monotone in distance.
    pub fn range_km_for_loss(&self, freq_mhz: f64, max_loss_db: f64) -> f64 {
        let mut lo = 0.001;
        let mut hi = 1000.0;
        if self.path_loss_db(freq_mhz, lo) > max_loss_db {
            return 0.0;
        }
        if self.path_loss_db(freq_mhz, hi) <= max_loss_db {
            return hi;
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.path_loss_db(freq_mhz, mid) <= max_loss_db {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Friis free-space path loss, dB.
pub fn free_space_db(freq_mhz: f64, dist_km: f64) -> f64 {
    debug_assert!(freq_mhz > 0.0);
    let dist_km = dist_km.max(1e-6);
    20.0 * dist_km.log10() + 20.0 * freq_mhz.log10() + 32.44
}

/// Okumura-Hata (≤1500 MHz) / COST-231-Hata (1500–2600+ MHz) path loss, dB.
fn hata_db(
    freq_mhz: f64,
    dist_km: f64,
    bs_height_m: f64,
    ue_height_m: f64,
    env: Environment,
) -> f64 {
    // Clamp into validity ranges; Hata is specified for 150–1500 MHz
    // (COST-231 extends to 2 GHz; we stretch it to the 2.4/5.8 GHz ISM bands
    // for comparative purposes, which is conservative *in favour of WiFi*
    // because real ISM-band clutter loss is worse than the formula's trend).
    let f = freq_mhz.clamp(150.0, 6000.0);
    let hb = bs_height_m.clamp(30.0, 200.0);
    let hm = ue_height_m.clamp(1.0, 10.0);
    let d = dist_km.clamp(0.02, 100.0);

    // Mobile antenna correction for a small/medium city.
    let a_hm = (1.1 * f.log10() - 0.7) * hm - (1.56 * f.log10() - 0.8);

    let urban = if f <= 1500.0 {
        69.55 + 26.16 * f.log10() - 13.82 * hb.log10() - a_hm
            + (44.9 - 6.55 * hb.log10()) * d.log10()
    } else {
        // COST-231-Hata; metropolitan-center constant omitted (cm = 0 dB for
        // medium city / suburban, which matches the rural target).
        46.3 + 33.9 * f.log10() - 13.82 * hb.log10() - a_hm + (44.9 - 6.55 * hb.log10()) * d.log10()
    };

    match env {
        Environment::Urban => urban,
        Environment::Suburban => urban - 2.0 * (f / 28.0).log10().powi(2) - 5.4,
        Environment::RuralOpen => urban - 4.78 * f.log10().powi(2) + 18.33 * f.log10() - 40.94,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_reference_values() {
        // Classic checks: 2.4 GHz @ 100 m ≈ 80.1 dB; 850 MHz @ 1 km ≈ 91.0 dB.
        assert!((free_space_db(2400.0, 0.1) - 80.04).abs() < 0.1);
        assert!((free_space_db(850.0, 1.0) - 91.03).abs() < 0.1);
    }

    #[test]
    fn loss_increases_with_distance_and_frequency() {
        for model in [
            PathLossModel::FreeSpace,
            PathLossModel::LogDistance {
                exponent: 3.5,
                ref_m: 100.0,
            },
            PathLossModel::rural_macro(),
        ] {
            let mut prev = f64::NEG_INFINITY;
            for d in [0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0] {
                let l = model.path_loss_db(850.0, d);
                assert!(l > prev, "{model:?} not monotone at {d} km");
                prev = l;
            }
            assert!(
                model.path_loss_db(2400.0, 5.0) > model.path_loss_db(850.0, 5.0),
                "{model:?} not monotone in frequency"
            );
        }
    }

    #[test]
    fn hata_urban_reference_value() {
        // Hata urban, f=900, hb=30, hm=1.5, d=1 km. Known to be ≈126 dB.
        let model = PathLossModel::Hata {
            environment: Environment::Urban,
            bs_height_m: 30.0,
            ue_height_m: 1.5,
        };
        let l = model.path_loss_db(900.0, 1.0);
        assert!((l - 126.4).abs() < 1.0, "got {l}");
    }

    #[test]
    fn rural_is_kinder_than_urban() {
        let urban = PathLossModel::Hata {
            environment: Environment::Urban,
            bs_height_m: 30.0,
            ue_height_m: 1.5,
        };
        let suburban = PathLossModel::Hata {
            environment: Environment::Suburban,
            bs_height_m: 30.0,
            ue_height_m: 1.5,
        };
        let rural = PathLossModel::rural_macro();
        let (u, s, r) = (
            urban.path_loss_db(850.0, 5.0),
            suburban.path_loss_db(850.0, 5.0),
            rural.path_loss_db(850.0, 5.0),
        );
        assert!(u > s && s > r, "urban {u} suburban {s} rural {r}");
        // The open-area correction at 850 MHz is roughly 28 dB below urban.
        assert!((u - r) > 20.0 && (u - r) < 35.0);
    }

    #[test]
    fn sub_ghz_beats_ism_at_range_paper_claim() {
        // At 10 km rural, 850 MHz should enjoy dramatically less loss than
        // 2.4 GHz — this inequality is the quantitative heart of §3.2.
        let model = PathLossModel::rural_macro();
        let l850 = model.path_loss_db(850.0, 10.0);
        let l2400 = model.path_loss_db(2400.0, 10.0);
        // Free space alone gives 9 dB at this ratio; Hata's environment
        // correction claws some back, so require a solid 8 dB advantage.
        assert!(l2400 - l850 > 8.0, "850: {l850}, 2400: {l2400}");
        // And 450 MHz (band 31) beats 850.
        let l450 = model.path_loss_db(450.0, 10.0);
        assert!(l850 > l450);
    }

    #[test]
    fn range_inversion_round_trips() {
        let model = PathLossModel::rural_macro();
        for d in [0.5, 2.0, 8.0, 25.0] {
            let loss = model.path_loss_db(850.0, d);
            let d_back = model.range_km_for_loss(850.0, loss);
            assert!((d_back - d).abs() / d < 1e-3, "{d} vs {d_back}");
        }
        // Impossible budget → zero range; infinite budget → capped at 1000.
        assert_eq!(model.range_km_for_loss(850.0, -10.0), 0.0);
        assert_eq!(model.range_km_for_loss(850.0, 1e9), 1000.0);
    }

    #[test]
    fn log_distance_continuous_at_reference() {
        let model = PathLossModel::LogDistance {
            exponent: 4.0,
            ref_m: 100.0,
        };
        let just_below = model.path_loss_db(850.0, 0.0999);
        let just_above = model.path_loss_db(850.0, 0.1001);
        assert!((just_above - just_below).abs() < 0.1);
    }

    #[test]
    fn tiny_distances_clamp() {
        let model = PathLossModel::FreeSpace;
        let l = model.path_loss_db(850.0, 0.0);
        assert!(l.is_finite() && l > 0.0);
    }
}
