//! Decibel / linear power conversions and small RF helpers.
//!
//! All powers in this crate are `f64` dBm unless a name says otherwise; all
//! gains/losses are dB. These free functions keep the arithmetic honest at
//! the boundaries where we must add powers (linear domain) rather than
//! decibels.

/// Boltzmann constant × 290 K expressed as thermal noise density, dBm per Hz.
pub const THERMAL_NOISE_DBM_PER_HZ: f64 = -174.0;

/// Speed of light, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Convert a dB value to a linear ratio.
pub fn db_to_linear(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Convert a linear ratio to dB. Zero or negative input maps to -inf dB.
pub fn linear_to_db(lin: f64) -> f64 {
    if lin <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * lin.log10()
    }
}

/// Convert dBm to milliwatts.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    db_to_linear(dbm)
}

/// Convert milliwatts to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    linear_to_db(mw)
}

/// Sum several powers given in dBm, returning dBm (linear-domain addition).
pub fn dbm_sum(powers: &[f64]) -> f64 {
    mw_to_dbm(powers.iter().map(|&p| dbm_to_mw(p)).sum())
}

/// Thermal noise floor in dBm for a given bandwidth in Hz.
pub fn thermal_noise_dbm(bandwidth_hz: f64) -> f64 {
    debug_assert!(bandwidth_hz > 0.0);
    THERMAL_NOISE_DBM_PER_HZ + 10.0 * bandwidth_hz.log10()
}

/// Wavelength in meters for a carrier frequency in MHz.
pub fn wavelength_m(freq_mhz: f64) -> f64 {
    debug_assert!(freq_mhz > 0.0);
    SPEED_OF_LIGHT / (freq_mhz * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for db in [-30.0, -3.0, 0.0, 3.0, 10.0, 46.0] {
            assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
        }
    }

    #[test]
    fn known_conversions() {
        assert!((dbm_to_mw(0.0) - 1.0).abs() < 1e-12);
        assert!((dbm_to_mw(30.0) - 1000.0).abs() < 1e-9);
        assert!((mw_to_dbm(100.0) - 20.0).abs() < 1e-9);
        assert_eq!(linear_to_db(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn dbm_sum_doubles_to_plus_3db() {
        let s = dbm_sum(&[20.0, 20.0]);
        assert!((s - 23.0103).abs() < 1e-3);
        // Adding a much weaker signal barely moves the total.
        let s2 = dbm_sum(&[20.0, -20.0]);
        assert!((s2 - 20.0).abs() < 0.01);
    }

    #[test]
    fn thermal_noise_reference_values() {
        // 1 Hz → -174 dBm; 10 MHz LTE channel → about -104 dBm.
        assert!((thermal_noise_dbm(1.0) - -174.0).abs() < 1e-9);
        assert!((thermal_noise_dbm(10e6) - -104.0).abs() < 0.01);
        // 20 MHz WiFi channel → about -101 dBm.
        assert!((thermal_noise_dbm(20e6) - -100.99).abs() < 0.01);
    }

    #[test]
    fn wavelength_reference_values() {
        // 850 MHz (band 5) ≈ 35.3 cm; 2.4 GHz ≈ 12.5 cm.
        assert!((wavelength_m(850.0) - 0.3527).abs() < 1e-3);
        assert!((wavelength_m(2400.0) - 0.1249).abs() < 1e-3);
    }
}
