//! Waveform models: LTE numerology and the SC-FDMA vs OFDM power argument.
//!
//! §3.2 of the paper: *"LTE's SC-FDMA uplink modulation allows higher power
//! transmission and greater range from mobile devices."* The mechanism is
//! peak-to-average power ratio: OFDM's high PAPR forces the handset power
//! amplifier to back off from saturation to stay linear, while single-carrier
//! FDMA needs several dB less backoff, so the same PA delivers more average
//! power. We model that directly: each [`Waveform`] has a PAPR-driven backoff,
//! and the effective transmit power is the PA saturation power minus backoff,
//! clamped to the regulatory limit.

use serde::{Deserialize, Serialize};

/// Multiple-access waveform of a link.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Waveform {
    /// LTE downlink (and WiFi) multi-carrier modulation.
    Ofdm,
    /// LTE uplink single-carrier FDMA.
    ScFdma,
}

impl Waveform {
    /// Power-amplifier backoff (dB) the waveform requires to stay within
    /// spectral-emission limits. Literature values: OFDM needs ~8.5–12 dB
    /// PAPR headroom of which practical PAs absorb ~3–4 dB as output backoff;
    /// SC-FDMA's PAPR is 2.5–3 dB lower. We use net output backoffs of
    /// 3.5 dB (OFDM) and 1.0 dB (SC-FDMA), giving the ~2.5 dB uplink power
    /// advantage commonly cited for LTE handsets.
    pub fn pa_backoff_db(self) -> f64 {
        match self {
            Waveform::Ofdm => 3.5,
            Waveform::ScFdma => 1.0,
        }
    }

    /// Effective average transmit power from a PA with the given saturation
    /// power, clamped to a regulatory maximum.
    pub fn effective_tx_power_dbm(self, pa_saturation_dbm: f64, regulatory_max_dbm: f64) -> f64 {
        (pa_saturation_dbm - self.pa_backoff_db()).min(regulatory_max_dbm)
    }
}

/// One LTE channel-bandwidth configuration (TS 36.101 Table 5.6-1).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LteBandwidth {
    /// Nominal channel bandwidth, MHz.
    pub channel_mhz: f64,
    /// Number of resource blocks in the grid.
    pub n_prb: u32,
}

impl LteBandwidth {
    /// Occupied (transmission) bandwidth in Hz: 180 kHz per PRB.
    pub fn occupied_hz(&self) -> f64 {
        self.n_prb as f64 * 180_000.0
    }

    /// Look up a configuration by nominal channel bandwidth in MHz.
    pub fn by_mhz(mhz: f64) -> Option<LteBandwidth> {
        LTE_BANDWIDTHS
            .iter()
            .copied()
            .find(|b| (b.channel_mhz - mhz).abs() < 1e-9)
    }
}

/// The six E-UTRA channel bandwidths.
pub const LTE_BANDWIDTHS: [LteBandwidth; 6] = [
    LteBandwidth {
        channel_mhz: 1.4,
        n_prb: 6,
    },
    LteBandwidth {
        channel_mhz: 3.0,
        n_prb: 15,
    },
    LteBandwidth {
        channel_mhz: 5.0,
        n_prb: 25,
    },
    LteBandwidth {
        channel_mhz: 10.0,
        n_prb: 50,
    },
    LteBandwidth {
        channel_mhz: 15.0,
        n_prb: 75,
    },
    LteBandwidth {
        channel_mhz: 20.0,
        n_prb: 100,
    },
];

/// LTE frame timing constants.
pub mod timing {
    use dlte_sim::SimDuration;

    /// One subframe / TTI.
    pub const SUBFRAME: SimDuration = SimDuration::from_millis(1);
    /// One radio frame (10 subframes).
    pub const FRAME: SimDuration = SimDuration::from_millis(10);
    /// One slot (half subframe).
    pub const SLOT: SimDuration = SimDuration::from_micros(500);
    /// Basic time unit Ts = 1/(15000 × 2048) s ≈ 32.55 ns, in nanoseconds.
    pub const TS_NANOS: f64 = 1e9 / (15_000.0 * 2048.0);
    /// Normal cyclic prefix length of OFDM symbols 1–6 in a slot, ≈ 4.69 µs.
    pub const CP_NORMAL_US: f64 = 4.69;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scfdma_gets_more_power_from_same_pa() {
        // PA-limited regime (no regulatory clamp): full 2.5 dB advantage.
        let ofdm = Waveform::Ofdm.effective_tx_power_dbm(26.0, 30.0);
        let sc = Waveform::ScFdma.effective_tx_power_dbm(26.0, 30.0);
        assert!(sc > ofdm, "SC-FDMA must beat OFDM uplink power");
        assert!((sc - ofdm - 2.5).abs() < 1e-9, "expected 2.5 dB advantage");
        // With a 23 dBm regulatory cap, SC-FDMA saturates the cap (25→23)
        // while OFDM stays PA-limited at 22.5.
        let ofdm_cap = Waveform::Ofdm.effective_tx_power_dbm(26.0, 23.0);
        let sc_cap = Waveform::ScFdma.effective_tx_power_dbm(26.0, 23.0);
        assert!((sc_cap - 23.0).abs() < 1e-9);
        assert!((sc_cap - ofdm_cap - 0.5).abs() < 1e-9);
        // Both clamp at the regulatory maximum with a big PA.
        assert_eq!(Waveform::ScFdma.effective_tx_power_dbm(40.0, 23.0), 23.0);
        assert_eq!(Waveform::Ofdm.effective_tx_power_dbm(40.0, 23.0), 23.0);
    }

    #[test]
    fn bandwidth_table_matches_spec() {
        assert_eq!(LteBandwidth::by_mhz(10.0).unwrap().n_prb, 50);
        assert_eq!(LteBandwidth::by_mhz(1.4).unwrap().n_prb, 6);
        assert_eq!(LteBandwidth::by_mhz(20.0).unwrap().n_prb, 100);
        assert!(LteBandwidth::by_mhz(7.0).is_none());
        // Occupied bandwidth is 90% of nominal for 10 MHz: 9 MHz.
        let b = LteBandwidth::by_mhz(10.0).unwrap();
        assert!((b.occupied_hz() - 9e6).abs() < 1.0);
    }

    #[test]
    fn prb_counts_monotone_with_bandwidth() {
        for w in LTE_BANDWIDTHS.windows(2) {
            assert!(w[1].channel_mhz > w[0].channel_mhz);
            assert!(w[1].n_prb > w[0].n_prb);
        }
    }

    #[test]
    fn timing_constants() {
        use super::timing::*;
        assert_eq!(FRAME.as_millis(), 10);
        assert_eq!(SUBFRAME.as_micros(), 1000);
        assert_eq!(SLOT.as_micros(), 500);
        assert!((TS_NANOS - 32.552).abs() < 0.01);
    }
}
