//! 802.11 OFDM PHY rate table for the WiFi baselines.
//!
//! Single-stream 802.11n, 20 MHz, 800 ns guard interval — the workhorse of
//! exactly the rural WiFi deployments the paper contrasts against. SNR
//! requirements are standard published figures for 10% PER at 1000-byte
//! frames.

use serde::{Deserialize, Serialize};

/// One WiFi MCS entry.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WifiRate {
    /// HT MCS index (single spatial stream, 0–7).
    pub mcs: u8,
    /// Modulation + coding description.
    pub name: &'static str,
    /// PHY data rate, Mbit/s (20 MHz, 800 ns GI).
    pub phy_rate_mbps: f64,
    /// Minimum SNR (dB) to sustain the rate at the PER target.
    pub min_snr_db: f64,
}

/// 802.11n single-stream rate table.
pub const WIFI_RATES: [WifiRate; 8] = [
    WifiRate {
        mcs: 0,
        name: "BPSK 1/2",
        phy_rate_mbps: 6.5,
        min_snr_db: 4.0,
    },
    WifiRate {
        mcs: 1,
        name: "QPSK 1/2",
        phy_rate_mbps: 13.0,
        min_snr_db: 7.0,
    },
    WifiRate {
        mcs: 2,
        name: "QPSK 3/4",
        phy_rate_mbps: 19.5,
        min_snr_db: 9.5,
    },
    WifiRate {
        mcs: 3,
        name: "16QAM 1/2",
        phy_rate_mbps: 26.0,
        min_snr_db: 12.5,
    },
    WifiRate {
        mcs: 4,
        name: "16QAM 3/4",
        phy_rate_mbps: 39.0,
        min_snr_db: 16.0,
    },
    WifiRate {
        mcs: 5,
        name: "64QAM 2/3",
        phy_rate_mbps: 52.0,
        min_snr_db: 21.0,
    },
    WifiRate {
        mcs: 6,
        name: "64QAM 3/4",
        phy_rate_mbps: 58.5,
        min_snr_db: 22.5,
    },
    WifiRate {
        mcs: 7,
        name: "64QAM 5/6",
        phy_rate_mbps: 65.0,
        min_snr_db: 24.5,
    },
];

/// Highest sustainable rate at `snr_db`; `None` below MCS 0's requirement
/// (out of range).
pub fn select_rate(snr_db: f64) -> Option<&'static WifiRate> {
    WIFI_RATES.iter().rev().find(|r| snr_db >= r.min_snr_db)
}

/// PHY rate in bit/s at `snr_db` (0 when out of range).
pub fn phy_rate_bps(snr_db: f64) -> f64 {
    select_rate(snr_db).map_or(0.0, |r| r.phy_rate_mbps * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_monotone() {
        for w in WIFI_RATES.windows(2) {
            assert!(w[1].phy_rate_mbps > w[0].phy_rate_mbps);
            assert!(w[1].min_snr_db > w[0].min_snr_db);
        }
    }

    #[test]
    fn selection() {
        assert!(select_rate(0.0).is_none());
        assert_eq!(select_rate(4.0).unwrap().mcs, 0);
        assert_eq!(select_rate(13.0).unwrap().mcs, 3);
        assert_eq!(select_rate(40.0).unwrap().mcs, 7);
        assert_eq!(phy_rate_bps(-5.0), 0.0);
        assert_eq!(phy_rate_bps(30.0), 65e6);
    }

    #[test]
    fn wifi_needs_more_snr_than_lte_at_the_edge() {
        // WiFi's lowest rate needs ~4 dB; LTE CQI 1 works at -6.7 dB. This
        // ~10 dB sensitivity gap is part of the paper's range argument.
        let wifi_min = WIFI_RATES[0].min_snr_db;
        let lte_min = crate::mcs::CQI_TABLE[0].sinr_threshold_db;
        assert!(wifi_min - lte_min > 10.0);
    }
}
