//! Property-based tests for the PHY models' physical invariants.

use dlte_phy::harq::{bler, Combining, HarqConfig, HarqProcessModel};
use dlte_phy::mcs::{efficiency_at, select_cqi, CQI_TABLE};
use dlte_phy::propagation::{Environment, PathLossModel};
use dlte_phy::units::{db_to_linear, dbm_sum, linear_to_db};
use dlte_phy::wifi::phy_rate_bps;
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = PathLossModel> {
    prop_oneof![
        Just(PathLossModel::FreeSpace),
        (2.0f64..5.0, 10.0f64..500.0)
            .prop_map(|(exponent, ref_m)| { PathLossModel::LogDistance { exponent, ref_m } }),
        (
            prop_oneof![
                Just(Environment::Urban),
                Just(Environment::Suburban),
                Just(Environment::RuralOpen)
            ],
            30.0f64..120.0,
            1.0f64..5.0
        )
            .prop_map(
                |(environment, bs_height_m, ue_height_m)| PathLossModel::Hata {
                    environment,
                    bs_height_m,
                    ue_height_m,
                }
            ),
    ]
}

proptest! {
    /// Path loss is finite, positive at practical distances, and monotone
    /// non-decreasing in distance for every model and frequency.
    #[test]
    fn path_loss_monotone_in_distance(
        model in arb_model(),
        freq in 400.0f64..6000.0,
        d1 in 0.05f64..50.0,
        d2 in 0.05f64..50.0,
    ) {
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        let l_near = model.path_loss_db(freq, near);
        let l_far = model.path_loss_db(freq, far);
        prop_assert!(l_near.is_finite() && l_far.is_finite());
        prop_assert!(l_far + 1e-9 >= l_near, "{model:?} {freq} MHz: {l_near} @{near} > {l_far} @{far}");
    }

    /// Range inversion is consistent: loss(range(L)) ≈ L when achievable.
    #[test]
    fn range_inversion(model in arb_model(), freq in 400.0f64..6000.0, loss in 80.0f64..160.0) {
        let r = model.range_km_for_loss(freq, loss);
        if r > 0.0 && r < 1000.0 {
            let back = model.path_loss_db(freq, r);
            prop_assert!((back - loss).abs() < 0.1, "loss {loss} → range {r} → loss {back}");
        }
    }

    /// dB/linear conversions are inverse bijections on the sensible domain.
    #[test]
    fn db_linear_round_trip(db in -120.0f64..120.0) {
        prop_assert!((linear_to_db(db_to_linear(db)) - db).abs() < 1e-9);
    }

    /// Power sums dominate their largest term and are bounded by +10·log10(n).
    #[test]
    fn dbm_sum_bounds(powers in prop::collection::vec(-100.0f64..40.0, 1..10)) {
        let s = dbm_sum(&powers);
        let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(s >= max - 1e-9);
        prop_assert!(s <= max + 10.0 * (powers.len() as f64).log10() + 1e-9);
    }

    /// CQI selection is monotone: more SINR never selects a slower CQI.
    #[test]
    fn cqi_selection_monotone(a in -20.0f64..40.0, b in -20.0f64..40.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(efficiency_at(hi) >= efficiency_at(lo));
        if let (Some(e_lo), Some(e_hi)) = (select_cqi(lo), select_cqi(hi)) {
            prop_assert!(e_hi.cqi >= e_lo.cqi);
        }
    }

    /// WiFi rate selection is monotone in SNR too.
    #[test]
    fn wifi_rate_monotone(a in -5.0f64..40.0, b in -5.0f64..40.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(phy_rate_bps(hi) >= phy_rate_bps(lo));
    }

    /// BLER is a proper probability, monotone in SINR.
    #[test]
    fn bler_is_probability(snr in -40.0f64..60.0, thr in -10.0f64..25.0, slope in 0.1f64..3.0) {
        let b = bler(snr, thr, slope);
        prop_assert!((0.0..=1.0).contains(&b));
        let b_higher = bler(snr + 1.0, thr, slope);
        prop_assert!(b_higher <= b + 1e-12);
    }

    /// HARQ delivery probability and residual BLER always partition unity,
    /// and chase combining never does worse than plain ARQ.
    #[test]
    fn harq_invariants(snr in -15.0f64..30.0, cqi_idx in 0usize..15, max_tx in 1u8..8) {
        let cqi = &CQI_TABLE[cqi_idx];
        let chase = HarqProcessModel::new(HarqConfig {
            max_transmissions: max_tx,
            bler_slope_db: 0.6,
            combining: Combining::Chase,
        });
        let plain = HarqProcessModel::new(HarqConfig {
            max_transmissions: max_tx,
            bler_slope_db: 0.6,
            combining: Combining::None,
        });
        let sc = chase.stats(snr, cqi);
        let sp = plain.stats(snr, cqi);
        prop_assert!((sc.delivery_prob + sc.residual_bler - 1.0).abs() < 1e-9);
        prop_assert!(sc.expected_transmissions >= 1.0 - 1e-9);
        prop_assert!(sc.expected_transmissions <= max_tx as f64 + 1e-9);
        prop_assert!(sc.delivery_prob + 1e-12 >= sp.delivery_prob);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&sc.efficiency));
    }

    /// More HARQ attempts never reduce delivery probability.
    #[test]
    fn more_attempts_never_hurt_delivery(snr in -15.0f64..30.0, cqi_idx in 0usize..15) {
        let cqi = &CQI_TABLE[cqi_idx];
        let mut prev = 0.0;
        for max_tx in 1..=6u8 {
            let m = HarqProcessModel::new(HarqConfig {
                max_transmissions: max_tx,
                ..HarqConfig::default()
            });
            let s = m.stats(snr, cqi);
            prop_assert!(s.delivery_prob + 1e-12 >= prev);
            prev = s.delivery_prob;
        }
    }
}
