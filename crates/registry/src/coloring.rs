//! Interference-aware channel assignment, WiFi-mesh style.
//!
//! The paper's related work (§6) contrasts dLTE with state-of-the-art WiFi
//! meshes that "cooperatively and heuristically assign channels... to
//! minimize AP interference" \[42\]. This module implements that baseline —
//! greedy conflict-minimizing graph coloring over a measured interference
//! graph — so the registry's database-driven assignment can be compared
//! against it on equal terms.
//!
//! The structural difference the comparison surfaces: the mesh heuristic
//! only knows about interference it can *measure* (RF-visible neighbors),
//! while the registry knows every licensed transmitter — including hidden
//! ones — from geometry. On hidden-terminal topologies the mesh colors an
//! incomplete graph and collides anyway; the registry does not (E6).

use crate::geo::Point;
use serde::{Deserialize, Serialize};

/// One AP to color.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ApSite {
    pub location: Point,
    /// Radius within which this AP interferes with co-channel peers, km.
    pub contour_km: f64,
}

/// The interference graph: `edges[i]` lists the APs that AP `i` conflicts
/// with when co-channel.
pub fn interference_graph(aps: &[ApSite]) -> Vec<Vec<usize>> {
    let n = aps.len();
    let mut edges = vec![Vec::new(); n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = aps[i].location.distance_km(aps[j].location);
            if d < aps[i].contour_km + aps[j].contour_km {
                edges[i].push(j);
                edges[j].push(i);
            }
        }
    }
    edges
}

/// A *measured* interference graph: like [`interference_graph`] but each
/// edge survives only if the pair can actually hear each other
/// (`visible(i, j)`), modeling sensing-driven mesh heuristics that cannot
/// see hidden interferers.
pub fn measured_graph(aps: &[ApSite], visible: impl Fn(usize, usize) -> bool) -> Vec<Vec<usize>> {
    let mut g = interference_graph(aps);
    for (i, nbrs) in g.iter_mut().enumerate() {
        nbrs.retain(|&j| visible(i, j));
    }
    g
}

/// Greedy conflict-minimizing coloring: APs in descending degree order each
/// take the channel with the fewest conflicts among already-colored
/// neighbors (ties to the lowest channel). This is the classic
/// interference-aware mesh heuristic.
pub fn greedy_coloring(graph: &[Vec<usize>], n_channels: u32) -> Vec<u32> {
    let n = graph.len();
    if n_channels == 0 {
        // A plan with zero channels colors nothing (every AP stays on the
        // "uncolored" sentinel) — callers always build plans via
        // `ChannelPlan::for_band`, which guarantees at least one.
        return vec![u32::MAX; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(graph[i].len()));
    let mut color = vec![u32::MAX; n];
    for &i in &order {
        let mut conflicts = vec![0u32; n_channels as usize];
        for &j in &graph[i] {
            if color[j] != u32::MAX {
                conflicts[color[j] as usize] += 1;
            }
        }
        let best = (0..n_channels)
            .min_by_key(|&c| conflicts[c as usize])
            .unwrap_or(0);
        color[i] = best;
    }
    color
}

/// Count the co-channel conflicts a coloring leaves in the *true*
/// interference graph (each conflicting pair counted once).
pub fn residual_conflicts(true_graph: &[Vec<usize>], colors: &[u32]) -> usize {
    let mut count = 0;
    for (i, nbrs) in true_graph.iter().enumerate() {
        for &j in nbrs {
            if j > i && colors[i] == colors[j] {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing_km: f64, contour_km: f64) -> Vec<ApSite> {
        (0..n)
            .map(|i| ApSite {
                location: Point::new(i as f64 * spacing_km, 0.0),
                contour_km,
            })
            .collect()
    }

    #[test]
    fn graph_edges_from_geometry() {
        // Spacing 5 km, contours 10+10 → everyone within 20 km conflicts.
        let aps = line(5, 5.0, 10.0);
        let g = interference_graph(&aps);
        // AP0 conflicts with APs at 5, 10, 15 km (not 20).
        assert_eq!(g[0], vec![1, 2, 3]);
        // Middle AP sees both directions.
        assert_eq!(g[2].len(), 4);
    }

    #[test]
    fn coloring_separates_neighbors_when_channels_suffice() {
        let aps = line(4, 15.0, 10.0); // chain: i conflicts with i±1 only
        let g = interference_graph(&aps);
        let colors = greedy_coloring(&g, 2);
        assert_eq!(residual_conflicts(&g, &colors), 0, "2-colorable chain");
    }

    #[test]
    fn coloring_minimizes_when_channels_insufficient() {
        // 4 mutually conflicting APs, 2 channels: best possible is 2
        // same-channel pairs.
        let aps = line(4, 1.0, 10.0);
        let g = interference_graph(&aps);
        let colors = greedy_coloring(&g, 2);
        assert_eq!(residual_conflicts(&g, &colors), 2);
    }

    #[test]
    fn hidden_interferers_defeat_measured_coloring_but_not_the_registry() {
        // Two APs in true conflict that cannot hear each other (terrain).
        let aps = line(2, 15.0, 10.0);
        let true_g = interference_graph(&aps);
        assert_eq!(true_g[0], vec![1], "true conflict exists");
        // The mesh heuristic colors the *measured* graph, which is empty.
        let measured = measured_graph(&aps, |_, _| false);
        let mesh_colors = greedy_coloring(&measured, 2);
        assert!(
            residual_conflicts(&true_g, &mesh_colors) >= 1,
            "mesh coloring collides: both picked channel {}",
            mesh_colors[0]
        );
        // The registry colors the true (geometric) graph.
        let registry_colors = greedy_coloring(&true_g, 2);
        assert_eq!(residual_conflicts(&true_g, &registry_colors), 0);
    }

    #[test]
    fn empty_input() {
        let g = interference_graph(&[]);
        assert!(g.is_empty());
        assert!(greedy_coloring(&g, 3).is_empty());
        assert_eq!(residual_conflicts(&g, &[]), 0);
    }
}
