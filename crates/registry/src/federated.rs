//! Geographically federated registries.
//!
//! §4.3: *"Different registry designs are also possible, such as a federated
//! system similar to the DNS."* Zones own rectangular areas; each runs its
//! own [`SpectrumRegistry`]. A grant goes to the zone containing the
//! transmitter; a regional query fans out to every zone whose area the
//! query circle touches, then merges. Cross-zone interference at borders is
//! handled by having each zone's conflict check consult neighbor zones'
//! border grants (exchanged on request, like zone transfers).
//!
//! # Fault model
//!
//! Zones crash, restart, and partition independently:
//!
//! * a **crashed** zone serves nothing until [`FederatedRegistry::
//!   restart_zone`] brings it back — either from its last checkpoint
//!   ([`ZoneRecovery::Snapshot`]) or with nothing ([`ZoneRecovery::
//!   StateLoss`], fresh grant-id namespace);
//! * a **partitioned** zone is unreachable from the federation's query
//!   plane (and from its own clients) until [`FederatedRegistry::
//!   heal_zone`];
//! * any restart after a crash opens a **quarantine window** of one
//!   maximum lease: the zone denies *new* grants until every grant the
//!   lost incarnation may have issued has provably lapsed.
//!
//! The safety rule throughout is *conservative denial*: when a zone whose
//! answer matters (the owner, or a border neighbor whose area the contour
//! touches) is down, unreachable, or quarantined, the request is denied
//! with [`GrantDenied::ZoneUnavailable`] — never guessed. That is what
//! keeps the no-double-grant invariant through arbitrary churn, at the
//! price the availability experiments (E17) measure.

use crate::geo::{Point, Rect};
use crate::license::{GrantId, GrantRequest, LicenseGrant};
use crate::registry::{GrantDenied, RegistrySnapshot, SpectrumRegistry};
use dlte_sim::SimTime;
use serde::{Deserialize, Serialize};

/// How a crashed zone comes back.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ZoneRecovery {
    /// Everything since boot is gone; the zone restarts empty in a fresh
    /// grant-id namespace.
    StateLoss,
    /// Restore the last checkpoint taken with [`FederatedRegistry::
    /// checkpoint_zone`] (falls back to `StateLoss` if none was taken).
    Snapshot,
}

/// One zone: an area plus its registry, plus liveness state.
pub struct Zone {
    pub name: String,
    pub area: Rect,
    pub registry: SpectrumRegistry,
    up: bool,
    reachable: bool,
    checkpoint: Option<RegistrySnapshot>,
    crashed_at: Option<SimTime>,
    incarnation: u64,
}

impl Zone {
    pub fn new(name: impl Into<String>, area: Rect, registry: SpectrumRegistry) -> Self {
        Zone {
            name: name.into(),
            area,
            registry,
            up: true,
            reachable: true,
            checkpoint: None,
            crashed_at: None,
            incarnation: 0,
        }
    }

    pub fn is_up(&self) -> bool {
        self.up
    }

    pub fn is_reachable(&self) -> bool {
        self.up && self.reachable
    }

    /// A zone the federation can safely *rely on* for conflict answers:
    /// reachable and not hiding a lost window behind a quarantine.
    fn dependable(&self, now: SimTime) -> bool {
        self.is_reachable() && !self.registry.is_quarantined(now)
    }
}

/// The federation.
pub struct FederatedRegistry {
    zones: Vec<Zone>,
    /// Cross-zone queries served (fan-out accounting for E11-style
    /// overhead analysis).
    pub fanout_queries: u64,
    /// Fan-out queries that could not be served because the target zone
    /// was down or partitioned (the "timeout" path).
    pub fanout_unreachable: u64,
}

/// Grant-id namespace for a zone incarnation: 16 bits of zone, 16 bits of
/// incarnation, 32 bits of sequence. State loss bumps the incarnation so a
/// reborn zone can never reissue an id its lost predecessor handed out.
fn id_base(zone: usize, incarnation: u64) -> GrantId {
    ((zone as u64 + 1) << 48) | ((incarnation & 0xFFFF) << 32)
}

/// Zone index back out of a grant id minted by [`id_base`].
fn zone_of_id(id: GrantId) -> Option<usize> {
    ((id >> 48) as usize).checked_sub(1)
}

impl FederatedRegistry {
    pub fn new(zones: Vec<Zone>) -> Self {
        let mut f = FederatedRegistry {
            zones,
            fanout_queries: 0,
            fanout_unreachable: 0,
        };
        for (i, z) in f.zones.iter_mut().enumerate() {
            z.registry.set_id_base(id_base(i, 0));
        }
        f
    }

    fn zone_of(&self, p: Point) -> Option<usize> {
        self.zones.iter().position(|z| z.area.contains(p))
    }

    /// Request a grant; routed to the owning zone, with a border check
    /// against every other zone whose area the contour touches.
    ///
    /// Conservative denial: if the owner is unreachable, or any zone whose
    /// border grants could conflict cannot be dependably consulted (down,
    /// partitioned, or quarantined after state loss), the request fails
    /// with [`GrantDenied::ZoneUnavailable`] rather than risking a grant
    /// that overlaps state we cannot see.
    pub fn request(
        &mut self,
        req: GrantRequest,
        now: SimTime,
    ) -> Result<LicenseGrant, GrantDenied> {
        let Some(owner) = self.zone_of(req.location) else {
            return Err(GrantDenied::NoChannelAvailable);
        };
        if !self.zones[owner].is_reachable() {
            return Err(GrantDenied::ZoneUnavailable);
        }
        // Border safety: collect conflicting channels in neighbor zones.
        // The fan-out filter must use the federation's protection bound
        // (requester contour + the 50 km max-neighbor-contour the border
        // query assumes), NOT the requester's contour alone: a neighbor
        // grant whose own contour reaches across the border can conflict
        // even when our contour never touches that zone. (Caught by the
        // federation-vs-monolith equivalence property.)
        let mut forbidden: Vec<u32> = Vec::new();
        for (i, z) in self.zones.iter().enumerate() {
            if i == owner
                || !z
                    .area
                    .intersects_circle(req.location, req.contour_km + 50.0)
            {
                continue;
            }
            if !z.dependable(now) {
                // The neighbor might hold (or have forgotten) a grant we
                // cannot see; refusing is the only safe answer.
                self.fanout_unreachable += 1;
                return Err(GrantDenied::ZoneUnavailable);
            }
            self.fanout_queries += 1;
            for g in z
                .registry
                .query_region(req.location, req.contour_km + 50.0, now)
            {
                if g.location.distance_km(req.location) < g.contour_km + req.contour_km {
                    forbidden.push(g.channel);
                }
            }
        }
        let zone = &mut self.zones[owner];
        match req.channel {
            Some(c) if forbidden.contains(&c) => Err(GrantDenied::RequestedChannelTaken),
            Some(_) => zone.registry.request(req, now),
            None => {
                // Let the owning zone assign, retrying past channels the
                // neighbors forbid.
                let plan = zone.registry.plan();
                for c in 0..plan.n_channels {
                    if forbidden.contains(&c) {
                        continue;
                    }
                    let mut r = req;
                    r.channel = Some(c);
                    match zone.registry.request(r, now) {
                        Ok(g) => return Ok(g),
                        Err(GrantDenied::RequestedChannelTaken) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Err(GrantDenied::NoChannelAvailable)
            }
        }
    }

    /// Renew a grant, routed to the issuing zone via its id namespace.
    pub fn renew(
        &mut self,
        id: GrantId,
        lease: dlte_sim::SimDuration,
        now: SimTime,
    ) -> Result<LicenseGrant, GrantDenied> {
        let Some(zone) = zone_of_id(id).filter(|&z| z < self.zones.len()) else {
            return Err(GrantDenied::UnknownGrant);
        };
        if !self.zones[zone].is_reachable() {
            return Err(GrantDenied::ZoneUnavailable);
        }
        self.zones[zone]
            .registry
            .renew(id, lease, now)
            .ok_or(GrantDenied::UnknownGrant)
    }

    /// Release a grant. Returns `Err(ZoneUnavailable)` when the issuing
    /// zone cannot be reached — the grant then occupies spectrum until its
    /// lease lapses (the reclamation path).
    pub fn release(&mut self, id: GrantId) -> Result<bool, GrantDenied> {
        let Some(zone) = zone_of_id(id).filter(|&z| z < self.zones.len()) else {
            return Err(GrantDenied::UnknownGrant);
        };
        if !self.zones[zone].is_reachable() {
            return Err(GrantDenied::ZoneUnavailable);
        }
        Ok(self.zones[zone].registry.revoke(id))
    }

    /// Lapse expired grants in every live zone.
    pub fn expire(&mut self, now: SimTime) {
        for z in &mut self.zones {
            if z.up {
                z.registry.expire(now);
            }
        }
    }

    /// Checkpoint a zone's registry (what `ZoneRecovery::Snapshot`
    /// restores).
    pub fn checkpoint_zone(&mut self, zone: usize) {
        if let Some(z) = self.zones.get_mut(zone) {
            if z.up {
                z.checkpoint = Some(z.registry.snapshot());
            }
        }
    }

    /// Crash a zone: it stops serving everything until restarted.
    pub fn crash_zone(&mut self, zone: usize, now: SimTime) {
        if let Some(z) = self.zones.get_mut(zone) {
            if z.up {
                z.up = false;
                z.crashed_at = Some(now);
                dlte_obs::metrics::counter_add("zone_down", 1);
            }
        }
    }

    /// Restart a crashed zone. Both recovery modes open a quarantine
    /// window of one maximum lease from the crash instant: the restarted
    /// zone cannot prove which grants it issued between its recovery
    /// horizon and the crash, so it denies new grants until every such
    /// grant has lapsed on the licensee's side. Snapshot recovery still
    /// serves renewals for checkpointed grants (the availability edge E17
    /// measures); state loss starts empty in a fresh id namespace.
    pub fn restart_zone(&mut self, zone: usize, now: SimTime, recovery: ZoneRecovery) {
        let Some(z) = self.zones.get_mut(zone) else {
            return;
        };
        if z.up {
            return;
        }
        z.up = true;
        z.incarnation += 1;
        z.registry.clear_state(id_base(zone, z.incarnation));
        if recovery == ZoneRecovery::Snapshot {
            if let Some(snap) = &z.checkpoint {
                z.registry.install(snap);
            }
        }
        let crashed_at = z.crashed_at.take().unwrap_or(now);
        let max_lease = z.registry.max_lease();
        z.registry.begin_quarantine(crashed_at + max_lease);
        dlte_obs::metrics::counter_add("zone_resync", 1);
    }

    /// Partition a zone away from the federation (and its clients).
    pub fn partition_zone(&mut self, zone: usize) {
        if let Some(z) = self.zones.get_mut(zone) {
            if z.reachable {
                z.reachable = false;
                dlte_obs::metrics::counter_add("zone_down", 1);
            }
        }
    }

    /// Heal a partition. Callers should follow with [`Self::anti_entropy`]
    /// to detect and repair any cross-zone divergence.
    pub fn heal_zone(&mut self, zone: usize) {
        if let Some(z) = self.zones.get_mut(zone) {
            if !z.reachable {
                z.reachable = true;
                dlte_obs::metrics::counter_add("zone_resync", 1);
            }
        }
    }

    /// Anti-entropy pass after partitions heal: every pair of reachable
    /// zones exchanges border grants and checks for cross-zone conflicts.
    /// Conservative denial means divergence should never arise, but if it
    /// does (or a future zone implementation is less careful), the repair
    /// rule is deterministic: the younger grant (later `granted_at`, ties
    /// to the higher id) is revoked. Returns the revoked grants so the
    /// driver can notify their operators.
    pub fn anti_entropy(&mut self, now: SimTime) -> Vec<LicenseGrant> {
        let mut all: Vec<(usize, LicenseGrant)> = Vec::new();
        for (i, z) in self.zones.iter().enumerate() {
            if !z.is_reachable() {
                continue;
            }
            let mut zone_grants = z.registry.snapshot().grants;
            zone_grants.retain(|g| g.is_active(now));
            all.extend(zone_grants.into_iter().map(|g| (i, g)));
        }
        // Older grants win; iterate in seniority order and revoke any
        // later cross-zone grant conflicting with a kept one.
        all.sort_by(|(_, a), (_, b)| {
            a.granted_at
                .cmp(&b.granted_at)
                .then_with(|| a.id.cmp(&b.id))
        });
        let mut kept: Vec<(usize, LicenseGrant)> = Vec::new();
        let mut revoked: Vec<LicenseGrant> = Vec::new();
        for (zi, g) in all {
            let loser = kept
                .iter()
                .any(|(kzi, k)| *kzi != zi && k.conflicts_with(&g));
            if loser {
                self.zones[zi].registry.revoke(g.id);
                dlte_obs::metrics::counter_add("zone_resync", 1);
                revoked.push(g);
            } else {
                kept.push((zi, g));
            }
        }
        revoked
    }

    /// Regional query across all intersecting zones. Unreachable zones are
    /// skipped (and counted) — the answer is best-effort, which is why the
    /// *grant* path above never settles for it.
    pub fn query_region(
        &mut self,
        center: Point,
        radius_km: f64,
        now: SimTime,
    ) -> Vec<LicenseGrant> {
        let mut out = Vec::new();
        for z in &self.zones {
            if z.area.intersects_circle(center, radius_km) {
                if !z.is_reachable() {
                    self.fanout_unreachable += 1;
                    continue;
                }
                self.fanout_queries += 1;
                out.extend(z.registry.query_region(center, radius_km, now));
            }
        }
        out.sort_by_key(|g| g.id);
        out
    }

    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::license::ChannelPlan;
    use dlte_phy::band::Band;
    use dlte_sim::SimDuration;

    fn two_zone_federation() -> FederatedRegistry {
        let plan = ChannelPlan::for_band(Band::band5(), 10.0);
        FederatedRegistry::new(vec![
            Zone::new(
                "west",
                Rect::new(Point::new(-100.0, -100.0), Point::new(0.0, 100.0)),
                SpectrumRegistry::new(plan, 55.0),
            ),
            Zone::new(
                "east",
                Rect::new(Point::new(0.0001, -100.0), Point::new(100.0, 100.0)),
                SpectrumRegistry::new(plan, 55.0),
            ),
        ])
    }

    fn req(x: f64, channel: Option<u32>) -> GrantRequest {
        GrantRequest {
            operator: 1,
            location: Point::new(x, 0.0),
            channel,
            max_eirp_dbm: 50.0,
            contour_km: 10.0,
            lease: SimDuration::from_secs(3600),
        }
    }

    #[test]
    fn grants_route_to_owning_zone() {
        let mut f = two_zone_federation();
        f.request(req(-50.0, None), SimTime::ZERO).unwrap();
        f.request(req(50.0, None), SimTime::ZERO).unwrap();
        assert_eq!(f.zones()[0].registry.active_count(SimTime::ZERO), 1);
        assert_eq!(f.zones()[1].registry.active_count(SimTime::ZERO), 1);
    }

    #[test]
    fn zone_ids_are_namespaced() {
        let mut f = two_zone_federation();
        let w = f.request(req(-50.0, None), SimTime::ZERO).unwrap();
        let e = f.request(req(50.0, None), SimTime::ZERO).unwrap();
        assert_ne!(w.id, e.id, "cross-zone grant ids must never collide");
        assert_eq!(super::zone_of_id(w.id), Some(0));
        assert_eq!(super::zone_of_id(e.id), Some(1));
    }

    #[test]
    fn outside_all_zones_is_denied() {
        let mut f = two_zone_federation();
        assert!(f.request(req(500.0, None), SimTime::ZERO).is_err());
    }

    #[test]
    fn border_conflicts_respected_across_zones() {
        let mut f = two_zone_federation();
        // Grant on the west side of the border, channel 0.
        let g1 = f.request(req(-3.0, Some(0)), SimTime::ZERO).unwrap();
        assert_eq!(g1.channel, 0);
        // A grant just east of the border overlaps it; auto-assignment must
        // avoid channel 0 even though the zones are different.
        let g2 = f.request(req(3.0, None), SimTime::ZERO).unwrap();
        assert_ne!(g2.channel, 0, "border coordination failed");
        // Explicitly requesting the conflicting channel is refused.
        let e = f.request(req(4.0, Some(0)), SimTime::ZERO).unwrap_err();
        assert_eq!(e, GrantDenied::RequestedChannelTaken);
    }

    #[test]
    fn regional_query_merges_zones() {
        let mut f = two_zone_federation();
        f.request(req(-3.0, Some(0)), SimTime::ZERO).unwrap();
        f.request(req(3.0, Some(1)), SimTime::ZERO).unwrap();
        let all = f.query_region(Point::new(0.0, 0.0), 10.0, SimTime::ZERO);
        assert_eq!(all.len(), 2, "both sides of the border visible");
        assert!(f.fanout_queries >= 2, "query fanned out to both zones");
        // A query far inside one zone touches only it.
        let before = f.fanout_queries;
        f.query_region(Point::new(-90.0, 0.0), 5.0, SimTime::ZERO);
        assert_eq!(f.fanout_queries, before + 1);
    }

    #[test]
    fn crashed_zone_denies_and_neighbors_stay_up() {
        let mut f = two_zone_federation();
        f.crash_zone(0, SimTime::ZERO);
        assert_eq!(
            f.request(req(-50.0, None), SimTime::from_secs(1)),
            Err(GrantDenied::ZoneUnavailable)
        );
        // Deep inside the east zone — beyond contour + the 50 km
        // protection bound from the crashed zone: unaffected.
        assert!(f.request(req(70.0, None), SimTime::from_secs(1)).is_ok());
    }

    #[test]
    fn border_blindness_regression() {
        // Regression for the bug the equivalence property caught: a west
        // grant whose 19 km contour reaches far past the border must
        // forbid channel 0 for an east request whose own 5 km contour
        // never touches the west zone. The old fan-out filter used the
        // requester's contour to pick which zones to consult and missed it.
        let mut f = two_zone_federation();
        let mut w = req(-2.0, Some(0));
        w.contour_km = 19.0;
        f.request(w, SimTime::ZERO).unwrap();
        let mut e = req(15.0, None);
        e.contour_km = 5.0;
        // distance 17 < 19 + 5: a real RF conflict on channel 0.
        let g = f.request(e, SimTime::ZERO).unwrap();
        assert_ne!(g.channel, 0, "cross-border conflict missed");
        let mut e0 = req(15.0, Some(0));
        e0.contour_km = 5.0;
        assert_eq!(
            f.request(e0, SimTime::ZERO),
            Err(GrantDenied::RequestedChannelTaken)
        );
    }

    #[test]
    fn border_request_denied_while_neighbor_is_unreachable() {
        let mut f = two_zone_federation();
        f.partition_zone(0);
        // The east request's contour reaches into the west zone, whose
        // grants we cannot see → conservative denial, not a guess.
        assert_eq!(
            f.request(req(3.0, None), SimTime::from_secs(1)),
            Err(GrantDenied::ZoneUnavailable)
        );
        f.heal_zone(0);
        assert!(f.request(req(3.0, None), SimTime::from_secs(1)).is_ok());
    }

    #[test]
    fn state_loss_restart_quarantines_and_renew_fails() {
        let mut f = two_zone_federation();
        let mut q = req(-50.0, None);
        q.lease = SimDuration::from_secs(100);
        let g = f.request(q, SimTime::ZERO).unwrap();
        f.crash_zone(0, SimTime::from_secs(10));
        f.restart_zone(0, SimTime::from_secs(20), ZoneRecovery::StateLoss);
        // The zone forgot the grant: renewing it fails…
        assert_eq!(
            f.renew(g.id, SimDuration::from_secs(100), SimTime::from_secs(21)),
            Err(GrantDenied::UnknownGrant)
        );
        // …and new grants are denied through the quarantine window
        // (crash at 10 + max lease 3600).
        assert_eq!(
            f.request(req(-50.0, None), SimTime::from_secs(30)),
            Err(GrantDenied::Recovering)
        );
        assert!(f
            .request(req(-50.0, None), SimTime::from_secs(3611))
            .is_ok());
    }

    #[test]
    fn snapshot_restart_serves_checkpointed_renewals() {
        let mut f = two_zone_federation();
        let mut q = req(-50.0, None);
        q.lease = SimDuration::from_secs(100);
        let g = f.request(q, SimTime::ZERO).unwrap();
        f.checkpoint_zone(0);
        f.crash_zone(0, SimTime::from_secs(10));
        f.restart_zone(0, SimTime::from_secs(20), ZoneRecovery::Snapshot);
        // The checkpointed grant survives: renewals keep working even
        // inside the quarantine window.
        let renewed = f
            .renew(g.id, SimDuration::from_secs(100), SimTime::from_secs(21))
            .unwrap();
        assert_eq!(renewed.id, g.id);
        // New grants still wait out the quarantine.
        assert_eq!(
            f.request(req(-90.0, None), SimTime::from_secs(30)),
            Err(GrantDenied::Recovering)
        );
    }

    #[test]
    fn quarantined_neighbor_blocks_border_requests_only() {
        let mut f = two_zone_federation();
        f.crash_zone(0, SimTime::from_secs(10));
        f.restart_zone(0, SimTime::from_secs(20), ZoneRecovery::StateLoss);
        // West is up but quarantined: it may have forgotten a border grant,
        // so an east request whose contour reaches it must be denied…
        assert_eq!(
            f.request(req(3.0, None), SimTime::from_secs(30)),
            Err(GrantDenied::ZoneUnavailable)
        );
        // …while an east request beyond the protection bound is served.
        assert!(f.request(req(70.0, None), SimTime::from_secs(30)).is_ok());
    }

    #[test]
    fn state_loss_never_reissues_old_ids() {
        let mut f = two_zone_federation();
        let g = f.request(req(-50.0, None), SimTime::ZERO).unwrap();
        f.crash_zone(0, SimTime::from_secs(1));
        f.restart_zone(0, SimTime::from_secs(2), ZoneRecovery::StateLoss);
        // Wait out the quarantine, then grant again from the reborn zone.
        let t = SimTime::from_secs(4000);
        let g2 = f.request(req(-50.0, None), t).unwrap();
        assert_ne!(g.id, g2.id, "fresh incarnation, fresh id namespace");
        assert_eq!(super::zone_of_id(g2.id), Some(0));
    }

    #[test]
    fn release_routes_and_fails_when_zone_down() {
        let mut f = two_zone_federation();
        let g = f.request(req(-50.0, None), SimTime::ZERO).unwrap();
        f.crash_zone(0, SimTime::from_secs(1));
        assert_eq!(f.release(g.id), Err(GrantDenied::ZoneUnavailable));
        f.restart_zone(0, SimTime::from_secs(2), ZoneRecovery::StateLoss);
        // The reborn zone no longer holds it.
        assert_eq!(f.release(g.id), Ok(false));
        assert_eq!(f.release(u64::MAX), Err(GrantDenied::UnknownGrant));
    }

    #[test]
    fn anti_entropy_repairs_cross_zone_divergence() {
        let mut f = two_zone_federation();
        let g1 = f.request(req(-3.0, Some(0)), SimTime::ZERO).unwrap();
        // Force divergence by writing directly into the east zone behind
        // the federation's back (simulating a buggy or byzantine zone that
        // skipped the border check).
        let conflicting = f.zones[1]
            .registry
            .request(req(3.0, Some(0)), SimTime::from_secs(1))
            .unwrap();
        assert!(g1.conflicts_with(&conflicting));
        let revoked = f.anti_entropy(SimTime::from_secs(2));
        assert_eq!(revoked.len(), 1);
        assert_eq!(revoked[0].id, conflicting.id, "younger grant loses");
        // The older grant survives; the conflict is gone.
        assert_eq!(f.zones()[1].registry.active_count(SimTime::from_secs(2)), 0);
        assert_eq!(f.zones()[0].registry.active_count(SimTime::from_secs(2)), 1);
        // Idempotent once repaired.
        assert!(f.anti_entropy(SimTime::from_secs(3)).is_empty());
    }
}
