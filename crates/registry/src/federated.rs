//! Geographically federated registries.
//!
//! §4.3: *"Different registry designs are also possible, such as a federated
//! system similar to the DNS."* Zones own rectangular areas; each runs its
//! own [`SpectrumRegistry`]. A grant goes to the zone containing the
//! transmitter; a regional query fans out to every zone whose area the
//! query circle touches, then merges. Cross-zone interference at borders is
//! handled by having each zone's conflict check consult neighbor zones'
//! border grants (exchanged on request, like zone transfers).

use crate::geo::{Point, Rect};
use crate::license::{GrantRequest, LicenseGrant};
use crate::registry::{GrantDenied, SpectrumRegistry};
use dlte_sim::SimTime;

/// One zone: an area plus its registry.
pub struct Zone {
    pub name: String,
    pub area: Rect,
    pub registry: SpectrumRegistry,
}

/// The federation.
pub struct FederatedRegistry {
    zones: Vec<Zone>,
    /// Cross-zone queries served (fan-out accounting for E11-style
    /// overhead analysis).
    pub fanout_queries: u64,
}

impl FederatedRegistry {
    pub fn new(zones: Vec<Zone>) -> Self {
        FederatedRegistry {
            zones,
            fanout_queries: 0,
        }
    }

    fn zone_of(&self, p: Point) -> Option<usize> {
        self.zones.iter().position(|z| z.area.contains(p))
    }

    /// Request a grant; routed to the owning zone, with a border check
    /// against every other zone whose area the contour touches.
    pub fn request(
        &mut self,
        req: GrantRequest,
        now: SimTime,
    ) -> Result<LicenseGrant, GrantDenied> {
        let Some(owner) = self.zone_of(req.location) else {
            return Err(GrantDenied::NoChannelAvailable);
        };
        // Border safety: collect conflicting channels in neighbor zones.
        let mut forbidden: Vec<u32> = Vec::new();
        for (i, z) in self.zones.iter().enumerate() {
            if i == owner || !z.area.intersects_circle(req.location, req.contour_km) {
                continue;
            }
            for g in z
                .registry
                .query_region(req.location, req.contour_km + 50.0, now)
            {
                if g.location.distance_km(req.location) < g.contour_km + req.contour_km {
                    forbidden.push(g.channel);
                }
            }
        }
        let zone = &mut self.zones[owner];
        match req.channel {
            Some(c) if forbidden.contains(&c) => Err(GrantDenied::RequestedChannelTaken),
            Some(_) => zone.registry.request(req, now),
            None => {
                // Let the owning zone assign, retrying past channels the
                // neighbors forbid.
                let plan = zone.registry.plan();
                for c in 0..plan.n_channels {
                    if forbidden.contains(&c) {
                        continue;
                    }
                    let mut r = req;
                    r.channel = Some(c);
                    match zone.registry.request(r, now) {
                        Ok(g) => return Ok(g),
                        Err(GrantDenied::RequestedChannelTaken) => continue,
                        Err(e) => return Err(e),
                    }
                }
                Err(GrantDenied::NoChannelAvailable)
            }
        }
    }

    /// Regional query across all intersecting zones.
    pub fn query_region(
        &mut self,
        center: Point,
        radius_km: f64,
        now: SimTime,
    ) -> Vec<LicenseGrant> {
        let mut out = Vec::new();
        for z in &self.zones {
            if z.area.intersects_circle(center, radius_km) {
                self.fanout_queries += 1;
                out.extend(z.registry.query_region(center, radius_km, now));
            }
        }
        out.sort_by_key(|g| g.id);
        out
    }

    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::license::ChannelPlan;
    use dlte_phy::band::Band;
    use dlte_sim::SimDuration;

    fn two_zone_federation() -> FederatedRegistry {
        let plan = ChannelPlan::for_band(Band::band5(), 10.0);
        FederatedRegistry::new(vec![
            Zone {
                name: "west".into(),
                area: Rect::new(Point::new(-100.0, -100.0), Point::new(0.0, 100.0)),
                registry: SpectrumRegistry::new(plan, 55.0),
            },
            Zone {
                name: "east".into(),
                area: Rect::new(Point::new(0.0001, -100.0), Point::new(100.0, 100.0)),
                registry: SpectrumRegistry::new(plan, 55.0),
            },
        ])
    }

    fn req(x: f64, channel: Option<u32>) -> GrantRequest {
        GrantRequest {
            operator: 1,
            location: Point::new(x, 0.0),
            channel,
            max_eirp_dbm: 50.0,
            contour_km: 10.0,
            lease: SimDuration::from_secs(3600),
        }
    }

    #[test]
    fn grants_route_to_owning_zone() {
        let mut f = two_zone_federation();
        f.request(req(-50.0, None), SimTime::ZERO).unwrap();
        f.request(req(50.0, None), SimTime::ZERO).unwrap();
        assert_eq!(f.zones()[0].registry.active_count(SimTime::ZERO), 1);
        assert_eq!(f.zones()[1].registry.active_count(SimTime::ZERO), 1);
    }

    #[test]
    fn outside_all_zones_is_denied() {
        let mut f = two_zone_federation();
        assert!(f.request(req(500.0, None), SimTime::ZERO).is_err());
    }

    #[test]
    fn border_conflicts_respected_across_zones() {
        let mut f = two_zone_federation();
        // Grant on the west side of the border, channel 0.
        let g1 = f.request(req(-3.0, Some(0)), SimTime::ZERO).unwrap();
        assert_eq!(g1.channel, 0);
        // A grant just east of the border overlaps it; auto-assignment must
        // avoid channel 0 even though the zones are different.
        let g2 = f.request(req(3.0, None), SimTime::ZERO).unwrap();
        assert_ne!(g2.channel, 0, "border coordination failed");
        // Explicitly requesting the conflicting channel is refused.
        let e = f.request(req(4.0, Some(0)), SimTime::ZERO).unwrap_err();
        assert_eq!(e, GrantDenied::RequestedChannelTaken);
    }

    #[test]
    fn regional_query_merges_zones() {
        let mut f = two_zone_federation();
        f.request(req(-3.0, Some(0)), SimTime::ZERO).unwrap();
        f.request(req(3.0, Some(1)), SimTime::ZERO).unwrap();
        let all = f.query_region(Point::new(0.0, 0.0), 10.0, SimTime::ZERO);
        assert_eq!(all.len(), 2, "both sides of the border visible");
        assert!(f.fanout_queries >= 2, "query fanned out to both zones");
        // A query far inside one zone touches only it.
        let before = f.fanout_queries;
        f.query_region(Point::new(-90.0, 0.0), 5.0, SimTime::ZERO);
        assert_eq!(f.fanout_queries, before + 1);
    }
}
