//! Planar geography.
//!
//! Rural deployment regions are tens of kilometers across; a flat local
//! tangent plane in kilometer units is accurate to well under the precision
//! of any propagation model, and keeps every distance computation exact and
//! fast.

use serde::{Deserialize, Serialize};

/// A point on the local plane, kilometers.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Point {
    pub x_km: f64,
    pub y_km: f64,
}

impl Point {
    pub const fn new(x_km: f64, y_km: f64) -> Point {
        Point { x_km, y_km }
    }

    pub const ORIGIN: Point = Point {
        x_km: 0.0,
        y_km: 0.0,
    };

    /// Euclidean distance, km.
    pub fn distance_km(&self, other: Point) -> f64 {
        let dx = self.x_km - other.x_km;
        let dy = self.y_km - other.y_km;
        (dx * dx + dy * dy).sqrt()
    }
}

/// An axis-aligned rectangle (zone areas in the federated registry).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Rect {
    pub min: Point,
    pub max: Point,
}

impl Rect {
    pub fn new(min: Point, max: Point) -> Rect {
        assert!(
            min.x_km <= max.x_km && min.y_km <= max.y_km,
            "degenerate rect"
        );
        Rect { min, max }
    }

    pub fn contains(&self, p: Point) -> bool {
        (self.min.x_km..=self.max.x_km).contains(&p.x_km)
            && (self.min.y_km..=self.max.y_km).contains(&p.y_km)
    }

    /// True if a circle (center, radius) intersects this rectangle.
    pub fn intersects_circle(&self, center: Point, radius_km: f64) -> bool {
        let cx = center.x_km.clamp(self.min.x_km, self.max.x_km);
        let cy = center.y_km.clamp(self.min.y_km, self.max.y_km);
        Point::new(cx, cy).distance_km(center) <= radius_km
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_km(b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_km(a), 0.0);
    }

    #[test]
    fn rect_contains() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(0.0, 10.0)), "boundary inclusive");
        assert!(!r.contains(Point::new(-0.1, 5.0)));
    }

    #[test]
    fn circle_intersection() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        assert!(r.intersects_circle(Point::new(5.0, 5.0), 1.0), "inside");
        assert!(
            r.intersects_circle(Point::new(12.0, 5.0), 3.0),
            "overlaps edge"
        );
        assert!(
            !r.intersects_circle(Point::new(15.0, 5.0), 3.0),
            "clear miss"
        );
        // Corner case: circle near a corner.
        assert!(r.intersects_circle(Point::new(11.0, 11.0), 1.5));
        assert!(!r.intersects_circle(Point::new(11.0, 11.0), 1.0));
    }

    #[test]
    #[should_panic(expected = "degenerate rect")]
    fn degenerate_rect_panics() {
        Rect::new(Point::new(5.0, 5.0), Point::new(0.0, 0.0));
    }
}
