//! # dlte-registry — the open spectrum license registry
//!
//! §4.3: *"dLTE proposes a novel division of responsibilities for spectrum
//! management, using a lightweight open public license database for peer
//! discovery, and peer-to-peer organization for decentralized
//! coordination."* This crate is that database, in three governance
//! flavours the paper sketches:
//!
//! * [`registry::SpectrumRegistry`] — a single SAS-style automated registry
//!   (the CBRS model \[38\]): geolocated grants with co-channel
//!   interference-contour checks and automatic channel assignment;
//! * [`federated::FederatedRegistry`] — DNS-like geographic delegation:
//!   zones own areas, queries fan out only to intersecting zones;
//! * [`replicated::ReplicatedLog`] — the fully decentralized option \[27\]:
//!   a hash-chained append-only log with replica synchronization, from
//!   which any party can derive the same grant table.
//!
//! The registry's *product* is the answer to one question: **who else
//! transmits on my channel near me?** ([`registry::SpectrumRegistry::
//! contention_domain`]) — the input to X2 peer coordination and the
//! mechanism that replaces carrier-sensing (experiment E6).

pub mod coloring;
pub mod federated;
pub mod geo;
pub mod license;
pub mod registry;
pub mod replicated;

pub use federated::{FederatedRegistry, Zone, ZoneRecovery};
pub use geo::{Point, Rect};
pub use license::{ChannelPlan, GrantId, GrantRequest, LicenseGrant, OperatorId};
pub use registry::{GrantDenied, GrantPolicy, RegistrySnapshot, SpectrumRegistry};
pub use replicated::{Entry, LogSnapshot, ReplicatedLog};
