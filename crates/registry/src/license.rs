//! License grants and channel plans.

use crate::geo::Point;
use dlte_phy::band::Band;
use dlte_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Identifies an operator (an AP owner in dLTE — a person, school, co-op).
pub type OperatorId = u64;

/// Identifies a grant.
pub type GrantId = u64;

/// How a band is divided into assignable channels.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelPlan {
    pub band: u16,
    /// Channel width, MHz.
    pub channel_mhz: f64,
    /// Number of channels that fit the band's downlink allocation.
    pub n_channels: u32,
}

impl ChannelPlan {
    /// Divide a band's downlink allocation into channels of `channel_mhz`.
    pub fn for_band(band: &Band, channel_mhz: f64) -> ChannelPlan {
        let n = (band.downlink_width_mhz() / channel_mhz).floor() as u32;
        assert!(n > 0, "band {} narrower than one channel", band.number);
        ChannelPlan {
            band: band.number,
            channel_mhz,
            n_channels: n,
        }
    }

    /// Center frequency of channel `idx`, MHz.
    ///
    /// Plans are only constructible from a real [`Band`] (`for_band`), so
    /// an unknown band number here is a constructed-by-hand plan — a
    /// contract violation, reported as such rather than unwrapped.
    pub fn center_mhz(&self, idx: u32) -> f64 {
        assert!(idx < self.n_channels);
        let band = match Band::by_number(self.band) {
            Some(b) => b,
            None => panic!("channel plan references unknown band {}", self.band),
        };
        band.downlink_mhz.0 + self.channel_mhz * (idx as f64 + 0.5)
    }
}

/// A request for spectrum.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GrantRequest {
    pub operator: OperatorId,
    pub location: Point,
    /// Requested channel, or `None` to let the registry pick.
    pub channel: Option<u32>,
    pub max_eirp_dbm: f64,
    /// Radius within which this transmitter meaningfully interferes
    /// (protection contour).
    pub contour_km: f64,
    /// Requested lease duration.
    pub lease: dlte_sim::SimDuration,
}

/// A granted license.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LicenseGrant {
    pub id: GrantId,
    pub operator: OperatorId,
    pub location: Point,
    pub channel: u32,
    pub max_eirp_dbm: f64,
    pub contour_km: f64,
    pub granted_at: SimTime,
    pub expires_at: SimTime,
}

impl LicenseGrant {
    /// True if this grant and `other` share a channel and overlapping
    /// contours — i.e. they are in the same RF contention domain and must
    /// coordinate (or be separated by the registry).
    pub fn conflicts_with(&self, other: &LicenseGrant) -> bool {
        self.channel == other.channel
            && self.location.distance_km(other.location) < self.contour_km + other.contour_km
    }

    /// True if still valid at `now`.
    pub fn is_active(&self, now: SimTime) -> bool {
        now < self.expires_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_sim::SimDuration;

    #[test]
    fn channel_plan_divides_band5() {
        // Band 5 downlink is 25 MHz wide → two 10 MHz channels.
        let plan = ChannelPlan::for_band(Band::band5(), 10.0);
        assert_eq!(plan.n_channels, 2);
        assert!((plan.center_mhz(0) - 874.0).abs() < 1e-9);
        assert!((plan.center_mhz(1) - 884.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "narrower")]
    fn oversized_channel_panics() {
        ChannelPlan::for_band(Band::band31(), 10.0); // band 31 is 5 MHz wide
    }

    fn grant(channel: u32, x: f64, contour: f64) -> LicenseGrant {
        LicenseGrant {
            id: 0,
            operator: 1,
            location: Point::new(x, 0.0),
            channel,
            max_eirp_dbm: 50.0,
            contour_km: contour,
            granted_at: SimTime::ZERO,
            expires_at: SimTime::from_secs(3600),
        }
    }

    #[test]
    fn conflict_requires_cochannel_and_overlap() {
        let a = grant(0, 0.0, 10.0);
        let near_same = grant(0, 15.0, 10.0);
        let far_same = grant(0, 25.0, 10.0);
        let near_other = grant(1, 15.0, 10.0);
        assert!(a.conflicts_with(&near_same), "contours overlap");
        assert!(!a.conflicts_with(&far_same), "contours separated");
        assert!(!a.conflicts_with(&near_other), "different channel");
        // Symmetry.
        assert_eq!(a.conflicts_with(&near_same), near_same.conflicts_with(&a));
    }

    #[test]
    fn expiry() {
        let g = grant(0, 0.0, 10.0);
        assert!(g.is_active(SimTime::from_secs(1)));
        assert!(!g.is_active(SimTime::from_secs(3600)));
        let _ = SimDuration::ZERO;
    }
}
