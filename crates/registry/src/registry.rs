//! The SAS-style automated registry.
//!
//! Grants are checked against every active co-channel grant's protection
//! contour; when the requested channel is taken the registry scans the
//! channel plan for a free one (automated frequency coordination, as a CBRS
//! SAS does). Expired grants lapse automatically. The registry is *open*:
//! any operator who conforms to the protocol gets a grant if physics allows
//! one — the property Table 1's "open core + licensed radio" quadrant
//! requires.

use crate::geo::Point;
use crate::license::{ChannelPlan, GrantId, GrantRequest, LicenseGrant};
use dlte_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Default cap on any single lease. Bounding leases is what makes crash
/// recovery *provable*: a registry that lost state only has to stay
/// conservative for one maximum lease before every grant it forgot has
/// lapsed on the licensee's side too.
pub const DEFAULT_MAX_LEASE_S: u64 = 3600;

/// Spectrum sharing policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GrantPolicy {
    /// Deny grants whose contour overlaps an active co-channel grant
    /// (classic exclusive licensing).
    Exclusive,
    /// Grant anyway when no clean channel exists — overlapping co-channel
    /// operators are expected to coordinate over X2 (the dLTE §4.3 model;
    /// "new APs are free to join at any time, and coordinate with existing
    /// nodes").
    SharedWithCoordination,
}

/// Why a grant was refused.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum GrantDenied {
    /// Every channel in the plan conflicts with an active grant.
    NoChannelAvailable,
    /// The specifically requested channel conflicts (when auto-assignment
    /// was declined).
    RequestedChannelTaken,
    /// EIRP above the band's regulatory limit.
    EirpTooHigh { limit_dbm: f64 },
    /// The responsible zone (or a border neighbor whose answer is needed
    /// for a safe decision) is crashed or partitioned away.
    ZoneUnavailable,
    /// The zone restarted after losing state and is inside its quarantine
    /// window: it denies *new* grants until every grant it may have
    /// forgotten has provably expired (one maximum lease after the crash).
    Recovering,
    /// A renew or release referenced a grant the registry does not hold
    /// (lapsed, revoked, or lost in a crash).
    UnknownGrant,
}

/// Serde-able registry state for checkpoint/restore across zone crashes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    pub grants: Vec<LicenseGrant>,
    pub next_id: GrantId,
}

/// The registry.
#[derive(Clone, Debug)]
pub struct SpectrumRegistry {
    plan: ChannelPlan,
    policy: GrantPolicy,
    /// Regulatory EIRP cap for the band.
    max_eirp_dbm: f64,
    grants: HashMap<GrantId, LicenseGrant>,
    next_id: GrantId,
    /// Hard cap applied to every lease (requested leases are clamped).
    max_lease: SimDuration,
    /// After a state-losing restart: deny new grants until this instant.
    quarantine_until: Option<SimTime>,
    /// Statistics for the experiment harness.
    pub requests: u64,
    pub denials: u64,
}

impl SpectrumRegistry {
    /// An open registry with the dLTE sharing policy.
    pub fn new(plan: ChannelPlan, max_eirp_dbm: f64) -> Self {
        Self::with_policy(plan, max_eirp_dbm, GrantPolicy::SharedWithCoordination)
    }

    /// A registry with classic exclusive licensing.
    pub fn exclusive(plan: ChannelPlan, max_eirp_dbm: f64) -> Self {
        Self::with_policy(plan, max_eirp_dbm, GrantPolicy::Exclusive)
    }

    pub fn with_policy(plan: ChannelPlan, max_eirp_dbm: f64, policy: GrantPolicy) -> Self {
        SpectrumRegistry {
            plan,
            policy,
            max_eirp_dbm,
            grants: HashMap::new(),
            next_id: 1,
            max_lease: SimDuration::from_secs(DEFAULT_MAX_LEASE_S),
            quarantine_until: None,
            requests: 0,
            denials: 0,
        }
    }

    /// Builder: cap every lease at `max_lease` (the crash-recovery bound).
    pub fn with_lease_cap(mut self, max_lease: SimDuration) -> Self {
        self.max_lease = max_lease;
        self
    }

    pub fn max_lease(&self) -> SimDuration {
        self.max_lease
    }

    /// Move this registry's grant-id allocator into a disjoint namespace.
    /// Federation zones (and zone incarnations after state loss) each get
    /// their own namespace so ids stay globally unique — the property the
    /// crash-accountability oracle checks. Never lowers the allocator.
    pub fn set_id_base(&mut self, base: GrantId) {
        self.next_id = self.next_id.max(base.max(1));
    }

    /// Serde-able copy of the mutable state — the zone checkpoint.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut grants: Vec<LicenseGrant> = self.grants.values().copied().collect();
        grants.sort_by_key(|g| g.id);
        RegistrySnapshot {
            grants,
            next_id: self.next_id,
        }
    }

    /// Replace the mutable state with a checkpoint (snapshot recovery).
    pub fn install(&mut self, snap: &RegistrySnapshot) {
        self.grants = snap.grants.iter().map(|g| (g.id, *g)).collect();
        self.next_id = self.next_id.max(snap.next_id);
    }

    /// Drop every grant (a crash with state loss). `id_base` must be a
    /// fresh namespace — ids from the lost incarnation must never be
    /// reissued.
    pub fn clear_state(&mut self, id_base: GrantId) {
        self.grants.clear();
        self.next_id = id_base.max(1);
    }

    /// Enter (or extend) the post-crash quarantine window: new grants are
    /// denied with [`GrantDenied::Recovering`] until `until`, by which time
    /// every grant a lost incarnation issued has expired on the licensee's
    /// side (leases are capped at [`Self::max_lease`]).
    pub fn begin_quarantine(&mut self, until: SimTime) {
        self.quarantine_until = Some(self.quarantine_until.map_or(until, |q| q.max(until)));
    }

    pub fn is_quarantined(&self, now: SimTime) -> bool {
        self.quarantine_until.is_some_and(|q| now < q)
    }

    pub fn policy(&self) -> GrantPolicy {
        self.policy
    }

    pub fn plan(&self) -> ChannelPlan {
        self.plan
    }

    /// Purge expired grants. Returns how many lapsed — the reclamation
    /// path that returns a crashed zone's spectrum to the pool.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.grants.len();
        self.grants.retain(|_, g| g.is_active(now));
        let lapsed = before - self.grants.len();
        if lapsed > 0 {
            dlte_obs::metrics::counter_add("grants_expired", lapsed as u64);
        }
        lapsed
    }

    /// Number of active grants on `channel` whose contours overlap a grant
    /// at `location`/`contour`.
    fn channel_conflict_count(
        &self,
        channel: u32,
        location: Point,
        contour_km: f64,
        now: SimTime,
    ) -> usize {
        self.grants
            .values()
            .filter(|g| {
                g.is_active(now)
                    && g.channel == channel
                    && g.location.distance_km(location) < g.contour_km + contour_km
            })
            .count()
    }

    fn channel_conflicts(
        &self,
        channel: u32,
        location: Point,
        contour_km: f64,
        now: SimTime,
    ) -> bool {
        self.channel_conflict_count(channel, location, contour_km, now) > 0
    }

    /// Request a grant at time `now`.
    pub fn request(
        &mut self,
        req: GrantRequest,
        now: SimTime,
    ) -> Result<LicenseGrant, GrantDenied> {
        self.requests += 1;
        if self.is_quarantined(now) {
            return Err(self.deny(GrantDenied::Recovering));
        }
        if req.max_eirp_dbm > self.max_eirp_dbm {
            return Err(self.deny(GrantDenied::EirpTooHigh {
                limit_dbm: self.max_eirp_dbm,
            }));
        }
        let channel = match req.channel {
            Some(c) => {
                if self.policy == GrantPolicy::Exclusive
                    && self.channel_conflicts(c, req.location, req.contour_km, now)
                {
                    return Err(self.deny(GrantDenied::RequestedChannelTaken));
                }
                c
            }
            None => {
                // Automated assignment: channel with the fewest co-channel
                // conflicts (ties to the lowest index).
                let best = (0..self.plan.n_channels)
                    .map(|c| {
                        (
                            self.channel_conflict_count(c, req.location, req.contour_km, now),
                            c,
                        )
                    })
                    .min()
                    .ok_or(GrantDenied::NoChannelAvailable)
                    .map_err(|e| self.deny(e))?;
                if best.0 > 0 && self.policy == GrantPolicy::Exclusive {
                    return Err(self.deny(GrantDenied::NoChannelAvailable));
                }
                best.1
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        let grant = LicenseGrant {
            id,
            operator: req.operator,
            location: req.location,
            channel,
            max_eirp_dbm: req.max_eirp_dbm,
            contour_km: req.contour_km,
            granted_at: now,
            expires_at: now + req.lease.min(self.max_lease),
        };
        self.grants.insert(id, grant);
        dlte_obs::metrics::counter_add("grants_issued", 1);
        Ok(grant)
    }

    /// Count a denial in the stats and the metrics registry.
    fn deny(&mut self, why: GrantDenied) -> GrantDenied {
        self.denials += 1;
        dlte_obs::metrics::counter_add("grants_denied", 1);
        why
    }

    /// Renew a grant's lease. Returns the updated grant.
    pub fn renew(
        &mut self,
        id: GrantId,
        lease: dlte_sim::SimDuration,
        now: SimTime,
    ) -> Option<LicenseGrant> {
        let max_lease = self.max_lease;
        let g = self.grants.get_mut(&id)?;
        if !g.is_active(now) {
            return None;
        }
        g.expires_at = now + lease.min(max_lease);
        Some(*g)
    }

    /// Relinquish a grant.
    pub fn revoke(&mut self, id: GrantId) -> bool {
        self.grants.remove(&id).is_some()
    }

    /// All active grants within `radius_km` of `center` — peer discovery.
    pub fn query_region(&self, center: Point, radius_km: f64, now: SimTime) -> Vec<LicenseGrant> {
        let mut v: Vec<LicenseGrant> = self
            .grants
            .values()
            .filter(|g| g.is_active(now) && g.location.distance_km(center) <= radius_km)
            .copied()
            .collect();
        v.sort_by_key(|g| g.id);
        v
    }

    /// Active co-channel grants whose contours overlap `grant`'s — the set
    /// of peers this AP must coordinate with over X2.
    pub fn contention_domain(&self, grant: &LicenseGrant, now: SimTime) -> Vec<LicenseGrant> {
        let mut v: Vec<LicenseGrant> = self
            .grants
            .values()
            .filter(|g| g.id != grant.id && g.is_active(now) && g.conflicts_with(grant))
            .copied()
            .collect();
        v.sort_by_key(|g| g.id);
        v
    }

    pub fn active_count(&self, now: SimTime) -> usize {
        self.grants.values().filter(|g| g.is_active(now)).count()
    }

    pub fn grant(&self, id: GrantId) -> Option<&LicenseGrant> {
        self.grants.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_phy::band::Band;
    use dlte_sim::SimDuration;

    fn registry() -> SpectrumRegistry {
        // Band 5, two 10 MHz channels, 55 dBm cap, exclusive policy (the
        // policy most tests exercise; shared policy tested separately).
        SpectrumRegistry::exclusive(ChannelPlan::for_band(Band::band5(), 10.0), 55.0)
    }

    fn shared_registry() -> SpectrumRegistry {
        SpectrumRegistry::new(ChannelPlan::for_band(Band::band5(), 10.0), 55.0)
    }

    fn req(x_km: f64, channel: Option<u32>) -> GrantRequest {
        GrantRequest {
            operator: 1,
            location: Point::new(x_km, 0.0),
            channel,
            max_eirp_dbm: 50.0,
            contour_km: 10.0,
            lease: SimDuration::from_secs(3600),
        }
    }

    #[test]
    fn first_grant_succeeds_on_first_channel() {
        let mut r = registry();
        let g = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        assert_eq!(g.channel, 0);
        assert_eq!(r.active_count(SimTime::ZERO), 1);
    }

    #[test]
    fn overlapping_neighbor_gets_other_channel() {
        let mut r = registry();
        let g1 = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        let g2 = r.request(req(5.0, None), SimTime::ZERO).unwrap();
        assert_ne!(g1.channel, g2.channel, "auto-assignment separates them");
        // Third overlapping AP: both channels taken → denied.
        let e = r.request(req(2.0, None), SimTime::ZERO).unwrap_err();
        assert_eq!(e, GrantDenied::NoChannelAvailable);
        assert_eq!(r.denials, 1);
    }

    #[test]
    fn distant_aps_reuse_channels() {
        let mut r = registry();
        let g1 = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        let g2 = r.request(req(50.0, None), SimTime::ZERO).unwrap();
        assert_eq!(g1.channel, g2.channel, "spatial reuse");
        assert!(r.contention_domain(&g1, SimTime::ZERO).is_empty());
    }

    #[test]
    fn explicit_channel_respected_or_denied() {
        let mut r = registry();
        r.request(req(0.0, Some(1)), SimTime::ZERO).unwrap();
        let e = r.request(req(5.0, Some(1)), SimTime::ZERO).unwrap_err();
        assert_eq!(e, GrantDenied::RequestedChannelTaken);
        // Channel 0 remains free.
        assert!(r.request(req(5.0, Some(0)), SimTime::ZERO).is_ok());
    }

    #[test]
    fn eirp_cap_enforced() {
        let mut r = registry();
        let mut q = req(0.0, None);
        q.max_eirp_dbm = 60.0;
        assert_eq!(
            r.request(q, SimTime::ZERO),
            Err(GrantDenied::EirpTooHigh { limit_dbm: 55.0 })
        );
    }

    #[test]
    fn grants_expire_and_spectrum_returns() {
        let mut r = registry();
        let mut q = req(0.0, None);
        q.lease = SimDuration::from_secs(10);
        r.request(q, SimTime::ZERO).unwrap();
        // Same spot, channel 0: denied while active…
        assert!(r.request(req(0.0, Some(0)), SimTime::from_secs(5)).is_err());
        // …free after expiry.
        assert!(r.request(req(0.0, Some(0)), SimTime::from_secs(11)).is_ok());
        r.expire(SimTime::from_secs(11));
        assert_eq!(r.active_count(SimTime::from_secs(11)), 1);
    }

    #[test]
    fn renew_extends_only_active_grants() {
        let mut r = registry();
        let mut q = req(0.0, None);
        q.lease = SimDuration::from_secs(10);
        let g = r.request(q, SimTime::ZERO).unwrap();
        let renewed = r
            .renew(g.id, SimDuration::from_secs(100), SimTime::from_secs(5))
            .unwrap();
        assert_eq!(renewed.expires_at, SimTime::from_secs(105));
        // A lapsed grant cannot be renewed.
        assert!(r
            .renew(g.id, SimDuration::from_secs(10), SimTime::from_secs(200))
            .is_none());
        assert!(r
            .renew(999, SimDuration::from_secs(1), SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn region_query_finds_peers_the_dlte_discovery_primitive() {
        let mut r = registry();
        let _a = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        let _b = r.request(req(8.0, None), SimTime::ZERO).unwrap();
        let _c = r.request(req(100.0, None), SimTime::ZERO).unwrap();
        let nearby = r.query_region(Point::new(0.0, 0.0), 20.0, SimTime::ZERO);
        assert_eq!(nearby.len(), 2, "a and b, not the far one");
    }

    #[test]
    fn shared_policy_admits_overlap_for_coordination() {
        // The dLTE property: a third AP in a saturated area is not turned
        // away — it is granted the least-loaded channel and told (via its
        // contention domain) whom to coordinate with.
        let mut r = shared_registry();
        let _a = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        let _b = r.request(req(5.0, None), SimTime::ZERO).unwrap();
        let c = r.request(req(2.0, None), SimTime::ZERO).unwrap();
        let dom = r.contention_domain(&c, SimTime::ZERO);
        assert_eq!(dom.len(), 1, "must coordinate with one co-channel peer");
        assert_eq!(r.denials, 0);
    }

    #[test]
    fn contention_domain_is_cochannel_overlap_only() {
        let mut r = shared_registry();
        let a = r.request(req(0.0, Some(0)), SimTime::ZERO).unwrap();
        let _b = r.request(req(5.0, Some(1)), SimTime::ZERO).unwrap();
        // A third AP far enough from A to co-exist on 0 but inside
        // discovery range.
        let c = r.request(req(15.0, Some(0)), SimTime::ZERO).unwrap();
        // a (contour 10) and c (contour 10) at distance 15 < 20: conflict.
        let dom = r.contention_domain(&a, SimTime::ZERO);
        assert_eq!(dom.len(), 1);
        assert_eq!(dom[0].id, c.id);
    }

    #[test]
    fn leases_are_clamped_to_the_cap() {
        let mut r = registry().with_lease_cap(SimDuration::from_secs(30));
        let mut q = req(0.0, None);
        q.lease = SimDuration::from_secs(10_000);
        let g = r.request(q, SimTime::ZERO).unwrap();
        assert_eq!(g.expires_at, SimTime::from_secs(30));
        let renewed = r
            .renew(g.id, SimDuration::from_secs(10_000), SimTime::from_secs(10))
            .unwrap();
        assert_eq!(
            renewed.expires_at,
            SimTime::from_secs(40),
            "renew clamped too"
        );
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut r = registry();
        let g = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        let snap = r.snapshot();
        // Lose everything, then restore.
        r.clear_state(1);
        assert_eq!(r.active_count(SimTime::ZERO), 0);
        r.install(&snap);
        assert_eq!(r.active_count(SimTime::ZERO), 1);
        assert_eq!(r.grant(g.id).copied(), Some(g));
        // The allocator never goes backwards, so restored ids stay unique.
        let g2 = r.request(req(50.0, None), SimTime::ZERO).unwrap();
        assert!(g2.id > g.id);
    }

    #[test]
    fn quarantine_denies_new_grants_but_not_renewals() {
        let mut r = registry();
        let g = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        r.begin_quarantine(SimTime::from_secs(100));
        assert_eq!(
            r.request(req(50.0, None), SimTime::from_secs(10)),
            Err(GrantDenied::Recovering)
        );
        // A grant the registry still knows about can be renewed: renewal
        // cannot conflict with anything the registry forgot, because the
        // forgetting registry is the one that issued it.
        assert!(r
            .renew(g.id, SimDuration::from_secs(10), SimTime::from_secs(10))
            .is_some());
        // Quarantine lifts.
        assert!(r.request(req(50.0, None), SimTime::from_secs(100)).is_ok());
    }

    #[test]
    fn id_namespaces_do_not_collide() {
        let mut r = registry();
        r.set_id_base(1 << 48);
        let g = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        assert_eq!(g.id, 1 << 48);
        // Lowering the base is a no-op.
        r.set_id_base(1);
        let g2 = r.request(req(50.0, None), SimTime::ZERO).unwrap();
        assert_eq!(g2.id, (1 << 48) + 1);
    }

    #[test]
    fn expire_reports_reclaimed_grants() {
        let mut r = registry();
        let mut q = req(0.0, None);
        q.lease = SimDuration::from_secs(10);
        r.request(q, SimTime::ZERO).unwrap();
        assert_eq!(r.expire(SimTime::from_secs(5)), 0);
        assert_eq!(r.expire(SimTime::from_secs(11)), 1);
        assert_eq!(r.active_count(SimTime::from_secs(11)), 0);
    }

    #[test]
    fn revoke_frees_spectrum() {
        let mut r = registry();
        let g = r.request(req(0.0, Some(0)), SimTime::ZERO).unwrap();
        assert!(r.revoke(g.id));
        assert!(!r.revoke(g.id));
        assert!(r.request(req(0.0, Some(0)), SimTime::ZERO).is_ok());
    }
}
