//! The SAS-style automated registry.
//!
//! Grants are checked against every active co-channel grant's protection
//! contour; when the requested channel is taken the registry scans the
//! channel plan for a free one (automated frequency coordination, as a CBRS
//! SAS does). Expired grants lapse automatically. The registry is *open*:
//! any operator who conforms to the protocol gets a grant if physics allows
//! one — the property Table 1's "open core + licensed radio" quadrant
//! requires.

use crate::geo::Point;
use crate::license::{ChannelPlan, GrantId, GrantRequest, LicenseGrant};
use dlte_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Spectrum sharing policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum GrantPolicy {
    /// Deny grants whose contour overlaps an active co-channel grant
    /// (classic exclusive licensing).
    Exclusive,
    /// Grant anyway when no clean channel exists — overlapping co-channel
    /// operators are expected to coordinate over X2 (the dLTE §4.3 model;
    /// "new APs are free to join at any time, and coordinate with existing
    /// nodes").
    SharedWithCoordination,
}

/// Why a grant was refused.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum GrantDenied {
    /// Every channel in the plan conflicts with an active grant.
    NoChannelAvailable,
    /// The specifically requested channel conflicts (when auto-assignment
    /// was declined).
    RequestedChannelTaken,
    /// EIRP above the band's regulatory limit.
    EirpTooHigh { limit_dbm: f64 },
}

/// The registry.
#[derive(Clone, Debug)]
pub struct SpectrumRegistry {
    plan: ChannelPlan,
    policy: GrantPolicy,
    /// Regulatory EIRP cap for the band.
    max_eirp_dbm: f64,
    grants: HashMap<GrantId, LicenseGrant>,
    next_id: GrantId,
    /// Statistics for the experiment harness.
    pub requests: u64,
    pub denials: u64,
}

impl SpectrumRegistry {
    /// An open registry with the dLTE sharing policy.
    pub fn new(plan: ChannelPlan, max_eirp_dbm: f64) -> Self {
        Self::with_policy(plan, max_eirp_dbm, GrantPolicy::SharedWithCoordination)
    }

    /// A registry with classic exclusive licensing.
    pub fn exclusive(plan: ChannelPlan, max_eirp_dbm: f64) -> Self {
        Self::with_policy(plan, max_eirp_dbm, GrantPolicy::Exclusive)
    }

    pub fn with_policy(plan: ChannelPlan, max_eirp_dbm: f64, policy: GrantPolicy) -> Self {
        SpectrumRegistry {
            plan,
            policy,
            max_eirp_dbm,
            grants: HashMap::new(),
            next_id: 1,
            requests: 0,
            denials: 0,
        }
    }

    pub fn policy(&self) -> GrantPolicy {
        self.policy
    }

    pub fn plan(&self) -> ChannelPlan {
        self.plan
    }

    /// Purge expired grants.
    pub fn expire(&mut self, now: SimTime) {
        self.grants.retain(|_, g| g.is_active(now));
    }

    /// Number of active grants on `channel` whose contours overlap a grant
    /// at `location`/`contour`.
    fn channel_conflict_count(
        &self,
        channel: u32,
        location: Point,
        contour_km: f64,
        now: SimTime,
    ) -> usize {
        self.grants
            .values()
            .filter(|g| {
                g.is_active(now)
                    && g.channel == channel
                    && g.location.distance_km(location) < g.contour_km + contour_km
            })
            .count()
    }

    fn channel_conflicts(
        &self,
        channel: u32,
        location: Point,
        contour_km: f64,
        now: SimTime,
    ) -> bool {
        self.channel_conflict_count(channel, location, contour_km, now) > 0
    }

    /// Request a grant at time `now`.
    pub fn request(
        &mut self,
        req: GrantRequest,
        now: SimTime,
    ) -> Result<LicenseGrant, GrantDenied> {
        self.requests += 1;
        if req.max_eirp_dbm > self.max_eirp_dbm {
            self.denials += 1;
            return Err(GrantDenied::EirpTooHigh {
                limit_dbm: self.max_eirp_dbm,
            });
        }
        let channel = match req.channel {
            Some(c) => {
                if self.policy == GrantPolicy::Exclusive
                    && self.channel_conflicts(c, req.location, req.contour_km, now)
                {
                    self.denials += 1;
                    return Err(GrantDenied::RequestedChannelTaken);
                }
                c
            }
            None => {
                // Automated assignment: channel with the fewest co-channel
                // conflicts (ties to the lowest index).
                let best = (0..self.plan.n_channels)
                    .map(|c| {
                        (
                            self.channel_conflict_count(c, req.location, req.contour_km, now),
                            c,
                        )
                    })
                    .min()
                    .expect("plan has channels");
                if best.0 > 0 && self.policy == GrantPolicy::Exclusive {
                    self.denials += 1;
                    return Err(GrantDenied::NoChannelAvailable);
                }
                best.1
            }
        };
        let id = self.next_id;
        self.next_id += 1;
        let grant = LicenseGrant {
            id,
            operator: req.operator,
            location: req.location,
            channel,
            max_eirp_dbm: req.max_eirp_dbm,
            contour_km: req.contour_km,
            granted_at: now,
            expires_at: now + req.lease,
        };
        self.grants.insert(id, grant);
        Ok(grant)
    }

    /// Renew a grant's lease. Returns the updated grant.
    pub fn renew(
        &mut self,
        id: GrantId,
        lease: dlte_sim::SimDuration,
        now: SimTime,
    ) -> Option<LicenseGrant> {
        let g = self.grants.get_mut(&id)?;
        if !g.is_active(now) {
            return None;
        }
        g.expires_at = now + lease;
        Some(*g)
    }

    /// Relinquish a grant.
    pub fn revoke(&mut self, id: GrantId) -> bool {
        self.grants.remove(&id).is_some()
    }

    /// All active grants within `radius_km` of `center` — peer discovery.
    pub fn query_region(&self, center: Point, radius_km: f64, now: SimTime) -> Vec<LicenseGrant> {
        let mut v: Vec<LicenseGrant> = self
            .grants
            .values()
            .filter(|g| g.is_active(now) && g.location.distance_km(center) <= radius_km)
            .copied()
            .collect();
        v.sort_by_key(|g| g.id);
        v
    }

    /// Active co-channel grants whose contours overlap `grant`'s — the set
    /// of peers this AP must coordinate with over X2.
    pub fn contention_domain(&self, grant: &LicenseGrant, now: SimTime) -> Vec<LicenseGrant> {
        let mut v: Vec<LicenseGrant> = self
            .grants
            .values()
            .filter(|g| g.id != grant.id && g.is_active(now) && g.conflicts_with(grant))
            .copied()
            .collect();
        v.sort_by_key(|g| g.id);
        v
    }

    pub fn active_count(&self, now: SimTime) -> usize {
        self.grants.values().filter(|g| g.is_active(now)).count()
    }

    pub fn grant(&self, id: GrantId) -> Option<&LicenseGrant> {
        self.grants.get(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_phy::band::Band;
    use dlte_sim::SimDuration;

    fn registry() -> SpectrumRegistry {
        // Band 5, two 10 MHz channels, 55 dBm cap, exclusive policy (the
        // policy most tests exercise; shared policy tested separately).
        SpectrumRegistry::exclusive(ChannelPlan::for_band(Band::band5(), 10.0), 55.0)
    }

    fn shared_registry() -> SpectrumRegistry {
        SpectrumRegistry::new(ChannelPlan::for_band(Band::band5(), 10.0), 55.0)
    }

    fn req(x_km: f64, channel: Option<u32>) -> GrantRequest {
        GrantRequest {
            operator: 1,
            location: Point::new(x_km, 0.0),
            channel,
            max_eirp_dbm: 50.0,
            contour_km: 10.0,
            lease: SimDuration::from_secs(3600),
        }
    }

    #[test]
    fn first_grant_succeeds_on_first_channel() {
        let mut r = registry();
        let g = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        assert_eq!(g.channel, 0);
        assert_eq!(r.active_count(SimTime::ZERO), 1);
    }

    #[test]
    fn overlapping_neighbor_gets_other_channel() {
        let mut r = registry();
        let g1 = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        let g2 = r.request(req(5.0, None), SimTime::ZERO).unwrap();
        assert_ne!(g1.channel, g2.channel, "auto-assignment separates them");
        // Third overlapping AP: both channels taken → denied.
        let e = r.request(req(2.0, None), SimTime::ZERO).unwrap_err();
        assert_eq!(e, GrantDenied::NoChannelAvailable);
        assert_eq!(r.denials, 1);
    }

    #[test]
    fn distant_aps_reuse_channels() {
        let mut r = registry();
        let g1 = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        let g2 = r.request(req(50.0, None), SimTime::ZERO).unwrap();
        assert_eq!(g1.channel, g2.channel, "spatial reuse");
        assert!(r.contention_domain(&g1, SimTime::ZERO).is_empty());
    }

    #[test]
    fn explicit_channel_respected_or_denied() {
        let mut r = registry();
        r.request(req(0.0, Some(1)), SimTime::ZERO).unwrap();
        let e = r.request(req(5.0, Some(1)), SimTime::ZERO).unwrap_err();
        assert_eq!(e, GrantDenied::RequestedChannelTaken);
        // Channel 0 remains free.
        assert!(r.request(req(5.0, Some(0)), SimTime::ZERO).is_ok());
    }

    #[test]
    fn eirp_cap_enforced() {
        let mut r = registry();
        let mut q = req(0.0, None);
        q.max_eirp_dbm = 60.0;
        assert_eq!(
            r.request(q, SimTime::ZERO),
            Err(GrantDenied::EirpTooHigh { limit_dbm: 55.0 })
        );
    }

    #[test]
    fn grants_expire_and_spectrum_returns() {
        let mut r = registry();
        let mut q = req(0.0, None);
        q.lease = SimDuration::from_secs(10);
        r.request(q, SimTime::ZERO).unwrap();
        // Same spot, channel 0: denied while active…
        assert!(r.request(req(0.0, Some(0)), SimTime::from_secs(5)).is_err());
        // …free after expiry.
        assert!(r.request(req(0.0, Some(0)), SimTime::from_secs(11)).is_ok());
        r.expire(SimTime::from_secs(11));
        assert_eq!(r.active_count(SimTime::from_secs(11)), 1);
    }

    #[test]
    fn renew_extends_only_active_grants() {
        let mut r = registry();
        let mut q = req(0.0, None);
        q.lease = SimDuration::from_secs(10);
        let g = r.request(q, SimTime::ZERO).unwrap();
        let renewed = r
            .renew(g.id, SimDuration::from_secs(100), SimTime::from_secs(5))
            .unwrap();
        assert_eq!(renewed.expires_at, SimTime::from_secs(105));
        // A lapsed grant cannot be renewed.
        assert!(r
            .renew(g.id, SimDuration::from_secs(10), SimTime::from_secs(200))
            .is_none());
        assert!(r
            .renew(999, SimDuration::from_secs(1), SimTime::ZERO)
            .is_none());
    }

    #[test]
    fn region_query_finds_peers_the_dlte_discovery_primitive() {
        let mut r = registry();
        let _a = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        let _b = r.request(req(8.0, None), SimTime::ZERO).unwrap();
        let _c = r.request(req(100.0, None), SimTime::ZERO).unwrap();
        let nearby = r.query_region(Point::new(0.0, 0.0), 20.0, SimTime::ZERO);
        assert_eq!(nearby.len(), 2, "a and b, not the far one");
    }

    #[test]
    fn shared_policy_admits_overlap_for_coordination() {
        // The dLTE property: a third AP in a saturated area is not turned
        // away — it is granted the least-loaded channel and told (via its
        // contention domain) whom to coordinate with.
        let mut r = shared_registry();
        let _a = r.request(req(0.0, None), SimTime::ZERO).unwrap();
        let _b = r.request(req(5.0, None), SimTime::ZERO).unwrap();
        let c = r.request(req(2.0, None), SimTime::ZERO).unwrap();
        let dom = r.contention_domain(&c, SimTime::ZERO);
        assert_eq!(dom.len(), 1, "must coordinate with one co-channel peer");
        assert_eq!(r.denials, 0);
    }

    #[test]
    fn contention_domain_is_cochannel_overlap_only() {
        let mut r = shared_registry();
        let a = r.request(req(0.0, Some(0)), SimTime::ZERO).unwrap();
        let _b = r.request(req(5.0, Some(1)), SimTime::ZERO).unwrap();
        // A third AP far enough from A to co-exist on 0 but inside
        // discovery range.
        let c = r.request(req(15.0, Some(0)), SimTime::ZERO).unwrap();
        // a (contour 10) and c (contour 10) at distance 15 < 20: conflict.
        let dom = r.contention_domain(&a, SimTime::ZERO);
        assert_eq!(dom.len(), 1);
        assert_eq!(dom[0].id, c.id);
    }

    #[test]
    fn revoke_frees_spectrum() {
        let mut r = registry();
        let g = r.request(req(0.0, Some(0)), SimTime::ZERO).unwrap();
        assert!(r.revoke(g.id));
        assert!(!r.revoke(g.id));
        assert!(r.request(req(0.0, Some(0)), SimTime::ZERO).is_ok());
    }
}
