//! The fully decentralized registry: a hash-chained append-only log.
//!
//! §4.3 cites blockchain-based licensing \[27\] as the zero-trust end of
//! the registry design space. We implement the data structure that matters
//! for the architecture — an append-only log with tamper-evident chaining
//! and replica synchronization — without proof-of-work theater: consensus
//! is modeled as longest-valid-chain adoption, which is the property the
//! registry consumer (an AP deriving the grant table) actually relies on.

use crate::geo::Point;
use crate::license::{GrantId, LicenseGrant, OperatorId};
use dlte_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Log entry kinds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Entry {
    Grant(LicenseGrant),
    Revoke { id: GrantId, by: OperatorId },
}

/// One block in the log.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub height: u64,
    pub prev_hash: u64,
    pub hash: u64,
    pub entry: Entry,
}

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_entry(prev: u64, height: u64, entry: &Entry) -> u64 {
    let payload = match entry {
        Entry::Grant(g) => {
            mix64(g.id ^ mix64(g.operator))
                ^ mix64(g.channel as u64 ^ (g.location.x_km.to_bits() >> 1))
                ^ mix64(g.location.y_km.to_bits() >> 1)
                ^ mix64(g.contour_km.to_bits() >> 1)
                ^ mix64(g.max_eirp_dbm.to_bits() >> 1)
                ^ mix64(g.granted_at.as_nanos() ^ 0xBEEF)
                ^ mix64(g.expires_at.as_nanos())
        }
        Entry::Revoke { id, by } => mix64(*id) ^ mix64(*by ^ 0xDEAD),
    };
    mix64(prev ^ mix64(height) ^ payload)
}

/// A hash-anchored compaction snapshot: the live grant table as of
/// `base_height`, anchored to the chain by the hash of the last folded
/// block. `snap_hash` commits to the whole snapshot so tampering with a
/// folded grant is as detectable as tampering with a block.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LogSnapshot {
    /// Number of blocks folded into this snapshot (the height the chain
    /// resumes from).
    pub base_height: u64,
    /// Hash of the last folded block — the anchor the next block's
    /// `prev_hash` must match.
    pub base_hash: u64,
    /// Live grants at compaction time, sorted by id.
    pub grants: Vec<LicenseGrant>,
    /// Hash over (`base_height`, `base_hash`, `grants`).
    pub snap_hash: u64,
}

fn hash_snapshot(base_height: u64, base_hash: u64, grants: &[LicenseGrant]) -> u64 {
    let mut h = mix64(base_height ^ mix64(base_hash));
    for g in grants {
        h = mix64(h ^ hash_entry(0, 0, &Entry::Grant(*g)));
    }
    h
}

/// A replica of the log.
#[derive(Clone, Debug, Default)]
pub struct ReplicatedLog {
    snapshot: Option<LogSnapshot>,
    blocks: Vec<Block>,
}

impl ReplicatedLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reconstruct a log from raw parts, as received from a peer over the
    /// wire. No validation happens here — receivers must call
    /// [`Self::verify`] (as [`Self::sync_from`] does) before trusting it.
    pub fn from_parts(snapshot: Option<LogSnapshot>, blocks: Vec<Block>) -> Self {
        ReplicatedLog { snapshot, blocks }
    }

    /// Total chain height, counting blocks folded into the snapshot.
    pub fn height(&self) -> u64 {
        self.base_height() + self.blocks.len() as u64
    }

    fn base_height(&self) -> u64 {
        self.snapshot.as_ref().map_or(0, |s| s.base_height)
    }

    pub fn tip_hash(&self) -> u64 {
        self.blocks
            .last()
            .map(|b| b.hash)
            .or(self.snapshot.as_ref().map(|s| s.base_hash))
            .unwrap_or(0)
    }

    /// The hash this chain records at `height`, if it still holds it:
    /// a block's hash, or the snapshot anchor for the last folded height.
    /// `None` means the height was compacted away (or never reached).
    fn hash_at(&self, height: u64) -> Option<u64> {
        let base = self.base_height();
        if base > 0 && height == base - 1 {
            return self.snapshot.as_ref().map(|s| s.base_hash);
        }
        if height < base {
            return None;
        }
        self.blocks.get((height - base) as usize).map(|b| b.hash)
    }

    /// Append an entry locally.
    pub fn append(&mut self, entry: Entry) -> Block {
        let height = self.height();
        let prev_hash = self.tip_hash();
        let block = Block {
            height,
            prev_hash,
            hash: hash_entry(prev_hash, height, &entry),
            entry,
        };
        self.blocks.push(block);
        block
    }

    /// Fold every block into a hash-anchored snapshot of the live table at
    /// `now` and drop the block storage. Returns the number of blocks
    /// folded (0 = nothing to do). The chain stays verifiable: the next
    /// block's `prev_hash` must match the snapshot's `base_hash`, and the
    /// snapshot itself carries a recomputable `snap_hash`.
    pub fn compact(&mut self, now: SimTime) -> u64 {
        let folded = self.blocks.len() as u64;
        if folded == 0 {
            return 0;
        }
        let mut grants = self.grant_table(now);
        grants.sort_by_key(|g| g.id);
        let base_height = self.height();
        let base_hash = self.tip_hash();
        let snap_hash = hash_snapshot(base_height, base_hash, &grants);
        self.snapshot = Some(LogSnapshot {
            base_height,
            base_hash,
            grants,
            snap_hash,
        });
        self.blocks.clear();
        dlte_obs::metrics::counter_add("log_compactions", 1);
        folded
    }

    pub fn snapshot(&self) -> Option<&LogSnapshot> {
        self.snapshot.as_ref()
    }

    /// Verify the whole chain: the snapshot's self-hash (when present) and
    /// every block's height/link/content hash above the anchor.
    pub fn verify(&self) -> bool {
        let mut prev = 0u64;
        if let Some(s) = &self.snapshot {
            if s.snap_hash != hash_snapshot(s.base_height, s.base_hash, &s.grants) {
                return false;
            }
            prev = s.base_hash;
        }
        let base = self.base_height();
        for (i, b) in self.blocks.iter().enumerate() {
            if b.height != base + i as u64
                || b.prev_hash != prev
                || b.hash != hash_entry(prev, b.height, &b.entry)
            {
                return false;
            }
            prev = b.hash;
        }
        true
    }

    /// Synchronize with a peer: adopt the peer's chain if it is valid,
    /// longer, and our history anchors into it (longest-valid-chain rule,
    /// compaction-aware). Returns true if we adopted.
    ///
    /// Anchoring: the peer must record our tip hash at our tip height —
    /// the hash chain then proves our whole history is its prefix. If the
    /// peer compacted *past* our tip we cannot prove continuity block by
    /// block; we accept its snapshot anchor instead (trust-on-bootstrap,
    /// the storage/verifiability trade compaction makes — a peer with a
    /// *divergent* retained history is still refused).
    pub fn sync_from(&mut self, peer: &ReplicatedLog) -> bool {
        if peer.height() <= self.height() || !peer.verify() {
            return false;
        }
        if self.height() > 0 {
            match peer.hash_at(self.height() - 1) {
                // Our tip anchors into the peer's retained chain.
                Some(h) if h == self.tip_hash() => {}
                // Peer retains that height but with different history.
                Some(_) => return false,
                // Peer compacted past our tip: snapshot hand-off.
                None => {}
            }
        }
        self.snapshot = peer.snapshot.clone();
        self.blocks = peer.blocks.clone();
        true
    }

    /// Derive the current grant table at `now` (grants minus revocations
    /// minus expirations) — what an AP computes after syncing. A later
    /// `Grant` entry with an id already in the table supersedes it (that
    /// is how renewals are recorded).
    pub fn grant_table(&self, now: SimTime) -> Vec<LicenseGrant> {
        let mut grants: Vec<LicenseGrant> = self
            .snapshot
            .as_ref()
            .map_or(Vec::new(), |s| s.grants.clone());
        for b in &self.blocks {
            match b.entry {
                Entry::Grant(g) => {
                    grants.retain(|x| x.id != g.id);
                    grants.push(g);
                }
                Entry::Revoke { id, by } => {
                    grants.retain(|g| !(g.id == id && g.operator == by));
                }
            }
        }
        grants.retain(|g| g.is_active(now));
        grants
    }

    /// Peer discovery straight from the derived table.
    pub fn query_region(&self, center: Point, radius_km: f64, now: SimTime) -> Vec<LicenseGrant> {
        self.grant_table(now)
            .into_iter()
            .filter(|g| g.location.distance_km(center) <= radius_km)
            .collect()
    }

    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_sim::SimDuration;

    fn grant(id: GrantId, op: OperatorId, x: f64) -> LicenseGrant {
        LicenseGrant {
            id,
            operator: op,
            location: Point::new(x, 0.0),
            channel: 0,
            max_eirp_dbm: 50.0,
            contour_km: 10.0,
            granted_at: SimTime::ZERO,
            expires_at: SimTime::ZERO + SimDuration::from_secs(3600),
        }
    }

    #[test]
    fn append_and_verify() {
        let mut log = ReplicatedLog::new();
        assert!(log.verify(), "empty chain valid");
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        log.append(Entry::Grant(grant(2, 20, 30.0)));
        log.append(Entry::Revoke { id: 1, by: 10 });
        assert_eq!(log.height(), 3);
        assert!(log.verify());
    }

    #[test]
    fn tampering_detected() {
        let mut log = ReplicatedLog::new();
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        log.append(Entry::Grant(grant(2, 20, 30.0)));
        // Tamper with the first entry.
        let mut tampered = log.clone();
        if let Entry::Grant(g) = &mut tampered.blocks[0].entry {
            g.channel = 1;
        }
        assert!(!tampered.verify(), "mutation must break the chain");
    }

    #[test]
    fn grant_table_applies_revocations_and_expiry() {
        let mut log = ReplicatedLog::new();
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        log.append(Entry::Grant(grant(2, 20, 30.0)));
        log.append(Entry::Revoke { id: 1, by: 10 });
        let t = log.grant_table(SimTime::from_secs(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].id, 2);
        // A revoke by the wrong operator is ignored.
        log.append(Entry::Revoke { id: 2, by: 99 });
        assert_eq!(log.grant_table(SimTime::from_secs(1)).len(), 1);
        // Everything lapses eventually.
        assert!(log.grant_table(SimTime::from_secs(4000)).is_empty());
    }

    #[test]
    fn replicas_converge_by_longest_chain() {
        let mut a = ReplicatedLog::new();
        a.append(Entry::Grant(grant(1, 10, 0.0)));
        let mut b = a.clone();
        // a advances.
        a.append(Entry::Grant(grant(2, 20, 30.0)));
        assert!(b.sync_from(&a), "shorter replica adopts");
        assert_eq!(b.tip_hash(), a.tip_hash());
        // Sync is idempotent / refuses shorter chains.
        assert!(!a.sync_from(&b));
        let shorter = ReplicatedLog::new();
        assert!(!a.sync_from(&shorter));
    }

    #[test]
    fn divergent_history_rejected() {
        let mut a = ReplicatedLog::new();
        a.append(Entry::Grant(grant(1, 10, 0.0)));
        let mut b = ReplicatedLog::new();
        b.append(Entry::Grant(grant(9, 99, 5.0)));
        b.append(Entry::Grant(grant(2, 20, 30.0)));
        // b is longer but shares no prefix with a.
        assert!(!a.sync_from(&b));
    }

    #[test]
    fn compaction_preserves_table_and_verifies() {
        let mut log = ReplicatedLog::new();
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        log.append(Entry::Grant(grant(2, 20, 30.0)));
        log.append(Entry::Revoke { id: 1, by: 10 });
        let before = log.grant_table(SimTime::from_secs(1));
        assert_eq!(log.compact(SimTime::from_secs(1)), 3);
        assert_eq!(log.blocks().len(), 0, "block storage reclaimed");
        assert_eq!(log.height(), 3, "height counts folded blocks");
        assert!(log.verify(), "snapshot self-hash holds");
        assert_eq!(log.grant_table(SimTime::from_secs(1)), before);
        // The chain continues on top of the anchor.
        let b = log.append(Entry::Grant(grant(3, 30, 60.0)));
        assert_eq!(b.height, 3);
        assert!(log.verify());
        assert_eq!(log.grant_table(SimTime::from_secs(1)).len(), 2);
        // Compacting an already-compacted (empty-block) log is a no-op.
        log.compact(SimTime::from_secs(1));
        assert_eq!(log.compact(SimTime::from_secs(1)), 0);
    }

    #[test]
    fn renewal_entries_supersede_by_id() {
        let mut log = ReplicatedLog::new();
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        let mut renewed = grant(1, 10, 0.0);
        renewed.expires_at = SimTime::ZERO + SimDuration::from_secs(9000);
        log.append(Entry::Grant(renewed));
        let t = log.grant_table(SimTime::from_secs(1));
        assert_eq!(t.len(), 1, "renewal replaces, never duplicates");
        assert_eq!(t[0].expires_at, renewed.expires_at);
    }

    #[test]
    fn sync_across_compaction_boundary() {
        let mut writer = ReplicatedLog::new();
        writer.append(Entry::Grant(grant(1, 10, 0.0)));
        writer.append(Entry::Grant(grant(2, 20, 30.0)));
        // Replica has the full pre-compaction prefix.
        let mut replica = writer.clone();
        writer.compact(SimTime::from_secs(1));
        writer.append(Entry::Grant(grant(3, 30, 60.0)));
        assert!(replica.sync_from(&writer), "tip anchors at the snapshot");
        assert_eq!(replica.height(), writer.height());
        assert_eq!(
            replica.grant_table(SimTime::from_secs(1)),
            writer.grant_table(SimTime::from_secs(1))
        );
    }

    #[test]
    fn lagging_replica_bootstraps_from_snapshot() {
        let mut writer = ReplicatedLog::new();
        writer.append(Entry::Grant(grant(1, 10, 0.0)));
        // Replica only ever saw the first block.
        let mut replica = writer.clone();
        writer.append(Entry::Grant(grant(2, 20, 30.0)));
        writer.append(Entry::Grant(grant(3, 30, 60.0)));
        writer.compact(SimTime::from_secs(1));
        // The writer pruned the replica's tip height: snapshot hand-off.
        assert!(replica.sync_from(&writer));
        assert_eq!(replica.grant_table(SimTime::from_secs(1)).len(), 3);
        // A divergent peer is still refused even when we lag far behind.
        let mut divergent = ReplicatedLog::new();
        divergent.append(Entry::Grant(grant(9, 99, 5.0)));
        let mut behind = ReplicatedLog::new();
        behind.append(Entry::Grant(grant(1, 10, 0.0)));
        behind.append(Entry::Grant(grant(8, 88, 70.0)));
        divergent.append(Entry::Grant(grant(7, 77, 80.0)));
        divergent.append(Entry::Grant(grant(6, 66, 90.0)));
        assert!(!behind.sync_from(&divergent), "retained divergence refused");
    }

    #[test]
    fn tampered_snapshot_detected_and_refused() {
        let mut writer = ReplicatedLog::new();
        writer.append(Entry::Grant(grant(1, 10, 0.0)));
        writer.append(Entry::Grant(grant(2, 20, 30.0)));
        writer.compact(SimTime::from_secs(1));
        writer.append(Entry::Grant(grant(3, 30, 60.0)));
        // Tamper with a folded grant's payload.
        let mut evil = writer.clone();
        if let Some(s) = &mut evil.snapshot {
            s.grants[0].channel = 5;
        }
        assert!(!evil.verify(), "snapshot tamper must break verification");
        let mut replica = ReplicatedLog::new();
        assert!(!replica.sync_from(&evil), "sync refuses a tampered chain");
        assert!(replica.sync_from(&writer), "the honest chain is adopted");
    }

    #[test]
    fn region_query_from_derived_table() {
        let mut log = ReplicatedLog::new();
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        log.append(Entry::Grant(grant(2, 20, 100.0)));
        let near = log.query_region(Point::ORIGIN, 20.0, SimTime::from_secs(1));
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].id, 1);
    }
}
