//! The fully decentralized registry: a hash-chained append-only log.
//!
//! §4.3 cites blockchain-based licensing \[27\] as the zero-trust end of
//! the registry design space. We implement the data structure that matters
//! for the architecture — an append-only log with tamper-evident chaining
//! and replica synchronization — without proof-of-work theater: consensus
//! is modeled as longest-valid-chain adoption, which is the property the
//! registry consumer (an AP deriving the grant table) actually relies on.

use crate::geo::Point;
use crate::license::{GrantId, LicenseGrant, OperatorId};
use dlte_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Log entry kinds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Entry {
    Grant(LicenseGrant),
    Revoke { id: GrantId, by: OperatorId },
}

/// One block in the log.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    pub height: u64,
    pub prev_hash: u64,
    pub hash: u64,
    pub entry: Entry,
}

fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_entry(prev: u64, height: u64, entry: &Entry) -> u64 {
    let payload = match entry {
        Entry::Grant(g) => {
            mix64(g.id ^ mix64(g.operator))
                ^ mix64(g.channel as u64 ^ (g.location.x_km.to_bits() >> 1))
                ^ mix64(g.location.y_km.to_bits() >> 1)
                ^ mix64(g.expires_at.as_nanos())
        }
        Entry::Revoke { id, by } => mix64(*id) ^ mix64(*by ^ 0xDEAD),
    };
    mix64(prev ^ mix64(height) ^ payload)
}

/// A replica of the log.
#[derive(Clone, Debug, Default)]
pub struct ReplicatedLog {
    blocks: Vec<Block>,
}

impl ReplicatedLog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn height(&self) -> u64 {
        self.blocks.len() as u64
    }

    pub fn tip_hash(&self) -> u64 {
        self.blocks.last().map_or(0, |b| b.hash)
    }

    /// Append an entry locally.
    pub fn append(&mut self, entry: Entry) -> Block {
        let height = self.height();
        let prev_hash = self.tip_hash();
        let block = Block {
            height,
            prev_hash,
            hash: hash_entry(prev_hash, height, &entry),
            entry,
        };
        self.blocks.push(block);
        block
    }

    /// Verify the whole chain.
    pub fn verify(&self) -> bool {
        let mut prev = 0u64;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.height != i as u64
                || b.prev_hash != prev
                || b.hash != hash_entry(prev, b.height, &b.entry)
            {
                return false;
            }
            prev = b.hash;
        }
        true
    }

    /// Synchronize with a peer: adopt the peer's chain if it is valid,
    /// longer, and shares our prefix (simple longest-chain rule). Returns
    /// true if we adopted.
    pub fn sync_from(&mut self, peer: &ReplicatedLog) -> bool {
        if peer.height() <= self.height() || !peer.verify() {
            return false;
        }
        // Shared-prefix check over our current blocks.
        let shares_prefix = self
            .blocks
            .iter()
            .zip(peer.blocks.iter())
            .all(|(a, b)| a.hash == b.hash);
        if !shares_prefix {
            return false;
        }
        self.blocks = peer.blocks.clone();
        true
    }

    /// Derive the current grant table at `now` (grants minus revocations
    /// minus expirations) — what an AP computes after syncing.
    pub fn grant_table(&self, now: SimTime) -> Vec<LicenseGrant> {
        let mut grants: Vec<LicenseGrant> = Vec::new();
        for b in &self.blocks {
            match b.entry {
                Entry::Grant(g) => grants.push(g),
                Entry::Revoke { id, by } => {
                    grants.retain(|g| !(g.id == id && g.operator == by));
                }
            }
        }
        grants.retain(|g| g.is_active(now));
        grants
    }

    /// Peer discovery straight from the derived table.
    pub fn query_region(&self, center: Point, radius_km: f64, now: SimTime) -> Vec<LicenseGrant> {
        self.grant_table(now)
            .into_iter()
            .filter(|g| g.location.distance_km(center) <= radius_km)
            .collect()
    }

    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_sim::SimDuration;

    fn grant(id: GrantId, op: OperatorId, x: f64) -> LicenseGrant {
        LicenseGrant {
            id,
            operator: op,
            location: Point::new(x, 0.0),
            channel: 0,
            max_eirp_dbm: 50.0,
            contour_km: 10.0,
            granted_at: SimTime::ZERO,
            expires_at: SimTime::ZERO + SimDuration::from_secs(3600),
        }
    }

    #[test]
    fn append_and_verify() {
        let mut log = ReplicatedLog::new();
        assert!(log.verify(), "empty chain valid");
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        log.append(Entry::Grant(grant(2, 20, 30.0)));
        log.append(Entry::Revoke { id: 1, by: 10 });
        assert_eq!(log.height(), 3);
        assert!(log.verify());
    }

    #[test]
    fn tampering_detected() {
        let mut log = ReplicatedLog::new();
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        log.append(Entry::Grant(grant(2, 20, 30.0)));
        // Tamper with the first entry.
        let mut tampered = log.clone();
        if let Entry::Grant(g) = &mut tampered.blocks[0].entry {
            g.channel = 1;
        }
        assert!(!tampered.verify(), "mutation must break the chain");
    }

    #[test]
    fn grant_table_applies_revocations_and_expiry() {
        let mut log = ReplicatedLog::new();
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        log.append(Entry::Grant(grant(2, 20, 30.0)));
        log.append(Entry::Revoke { id: 1, by: 10 });
        let t = log.grant_table(SimTime::from_secs(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].id, 2);
        // A revoke by the wrong operator is ignored.
        log.append(Entry::Revoke { id: 2, by: 99 });
        assert_eq!(log.grant_table(SimTime::from_secs(1)).len(), 1);
        // Everything lapses eventually.
        assert!(log.grant_table(SimTime::from_secs(4000)).is_empty());
    }

    #[test]
    fn replicas_converge_by_longest_chain() {
        let mut a = ReplicatedLog::new();
        a.append(Entry::Grant(grant(1, 10, 0.0)));
        let mut b = a.clone();
        // a advances.
        a.append(Entry::Grant(grant(2, 20, 30.0)));
        assert!(b.sync_from(&a), "shorter replica adopts");
        assert_eq!(b.tip_hash(), a.tip_hash());
        // Sync is idempotent / refuses shorter chains.
        assert!(!a.sync_from(&b));
        let shorter = ReplicatedLog::new();
        assert!(!a.sync_from(&shorter));
    }

    #[test]
    fn divergent_history_rejected() {
        let mut a = ReplicatedLog::new();
        a.append(Entry::Grant(grant(1, 10, 0.0)));
        let mut b = ReplicatedLog::new();
        b.append(Entry::Grant(grant(9, 99, 5.0)));
        b.append(Entry::Grant(grant(2, 20, 30.0)));
        // b is longer but shares no prefix with a.
        assert!(!a.sync_from(&b));
    }

    #[test]
    fn region_query_from_derived_table() {
        let mut log = ReplicatedLog::new();
        log.append(Entry::Grant(grant(1, 10, 0.0)));
        log.append(Entry::Grant(grant(2, 20, 100.0)));
        let near = log.query_region(Point::ORIGIN, 20.0, SimTime::from_secs(1));
        assert_eq!(near.len(), 1);
        assert_eq!(near[0].id, 1);
    }
}
