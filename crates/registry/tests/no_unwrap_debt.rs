//! Error-propagation debt gate: registry code runs inside zone processes
//! that must degrade (deny, quarantine) rather than die, so non-test code
//! in this crate may not `.unwrap()` / `.expect(` its way past a fallible
//! call. Explicit `panic!`/`assert!` remain allowed — those document
//! contract violations (e.g. a channel plan naming an unknown band), not
//! swallowed `Result`s. Test modules are exempt: a test that unwraps is
//! just asserting.

use std::fs;
use std::path::Path;

#[test]
fn non_test_registry_code_has_no_unwrap_or_expect() {
    let src = Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut offenders = Vec::new();
    let mut entries: Vec<_> = fs::read_dir(&src)
        .expect("read src dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no sources found under {src:?}");
    for path in entries {
        let text = fs::read_to_string(&path).expect("read source");
        // Everything from the first test module to EOF is test-only by
        // this crate's layout convention (test mods are last).
        let non_test = match text.find("#[cfg(test)]") {
            Some(cut) => &text[..cut],
            None => &text[..],
        };
        for (i, line) in non_test.lines().enumerate() {
            let code = line.split("//").next().unwrap_or(line);
            if code.contains(".unwrap()") || code.contains(".expect(") {
                offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "non-test registry code must propagate errors, not unwrap:\n{}",
        offenders.join("\n")
    );
}
