//! Property-based tests for registry invariants.

use dlte_phy::band::Band;
use dlte_registry::geo::Rect;
use dlte_registry::registry::GrantPolicy;
use dlte_registry::replicated::{Entry, ReplicatedLog};
use dlte_registry::{
    ChannelPlan, FederatedRegistry, GrantRequest, LicenseGrant, Point, SpectrumRegistry, Zone,
};
use dlte_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = GrantRequest> {
    (
        0u64..20,
        -50.0f64..50.0,
        -50.0f64..50.0,
        prop_oneof![Just(None), (0u32..2).prop_map(Some)],
        1.0f64..20.0,
    )
        .prop_map(|(operator, x, y, channel, contour)| GrantRequest {
            operator,
            location: Point::new(x, y),
            channel,
            max_eirp_dbm: 50.0,
            contour_km: contour,
            lease: SimDuration::from_secs(3600),
        })
}

proptest! {
    /// Under the exclusive policy, no two *live* grants ever conflict,
    /// whatever sequence of requests arrives.
    #[test]
    fn exclusive_registry_never_holds_conflicts(
        reqs in prop::collection::vec(arb_request(), 1..40),
    ) {
        let plan = ChannelPlan::for_band(Band::band5(), 10.0);
        let mut reg = SpectrumRegistry::exclusive(plan, 55.0);
        let now = SimTime::ZERO;
        let mut grants: Vec<LicenseGrant> = Vec::new();
        for r in reqs {
            if let Ok(g) = reg.request(r, now) {
                grants.push(g);
            }
        }
        for i in 0..grants.len() {
            for j in (i + 1)..grants.len() {
                prop_assert!(
                    !grants[i].conflicts_with(&grants[j]),
                    "grants {} and {} conflict",
                    grants[i].id,
                    grants[j].id
                );
            }
        }
    }

    /// Under the shared policy, everyone conforming is admitted, and every
    /// conflict the registry admits appears in *both* parties' contention
    /// domains (symmetry — the property X2 peering depends on).
    #[test]
    fn shared_registry_contention_domains_symmetric(
        reqs in prop::collection::vec(arb_request(), 1..30),
    ) {
        let plan = ChannelPlan::for_band(Band::band5(), 10.0);
        let mut reg =
            SpectrumRegistry::with_policy(plan, 55.0, GrantPolicy::SharedWithCoordination);
        let now = SimTime::ZERO;
        let mut grants = Vec::new();
        for r in reqs {
            let g = reg.request(r, now);
            prop_assert!(g.is_ok(), "open registry must admit conforming requests");
            grants.push(g.unwrap());
        }
        for g in &grants {
            for peer in reg.contention_domain(g, now) {
                let back = reg.contention_domain(&peer, now);
                prop_assert!(
                    back.iter().any(|x| x.id == g.id),
                    "asymmetric contention: {} sees {}, not vice versa",
                    g.id,
                    peer.id
                );
            }
        }
    }

    /// Region queries return exactly the active grants within the radius.
    #[test]
    fn region_query_exact(
        reqs in prop::collection::vec(arb_request(), 1..30),
        cx in -50.0f64..50.0,
        cy in -50.0f64..50.0,
        radius in 1.0f64..80.0,
    ) {
        let plan = ChannelPlan::for_band(Band::band5(), 10.0);
        let mut reg = SpectrumRegistry::new(plan, 55.0);
        let now = SimTime::ZERO;
        let mut all = Vec::new();
        for r in reqs {
            all.push(reg.request(r, now).unwrap());
        }
        let center = Point::new(cx, cy);
        let got = reg.query_region(center, radius, now);
        let expect: Vec<u64> = all
            .iter()
            .filter(|g| g.location.distance_km(center) <= radius)
            .map(|g| g.id)
            .collect();
        let got_ids: Vec<u64> = got.iter().map(|g| g.id).collect();
        prop_assert_eq!(got_ids, expect);
    }

    /// The replicated log verifies after any append sequence, derives a
    /// table consistent with naive replay, and replicas converge by sync.
    #[test]
    fn replicated_log_invariants(
        entries in prop::collection::vec((0u64..10, 0u64..5, any::<bool>()), 1..30),
        split in 0usize..30,
    ) {
        let mk = |id: u64, op: u64| LicenseGrant {
            id,
            operator: op,
            location: Point::new(id as f64, 0.0),
            channel: 0,
            max_eirp_dbm: 50.0,
            contour_km: 10.0,
            granted_at: SimTime::ZERO,
            expires_at: SimTime::ZERO + SimDuration::from_secs(3600),
        };
        let mut log = ReplicatedLog::new();
        let mut naive: Vec<LicenseGrant> = Vec::new();
        for &(id, op, is_grant) in &entries {
            if is_grant {
                log.append(Entry::Grant(mk(id, op)));
                // A re-granted id supersedes (renewal semantics).
                naive.retain(|g| g.id != id);
                naive.push(mk(id, op));
            } else {
                log.append(Entry::Revoke { id, by: op });
                naive.retain(|g| !(g.id == id && g.operator == op));
            }
        }
        prop_assert!(log.verify());
        let table = log.grant_table(SimTime::from_secs(1));
        prop_assert_eq!(table.len(), naive.len());
        // Replica that saw a prefix converges to the full log.
        let split = split.min(entries.len());
        let mut replica = ReplicatedLog::new();
        for &(id, op, is_grant) in &entries[..split] {
            if is_grant {
                replica.append(Entry::Grant(mk(id, op)));
            } else {
                replica.append(Entry::Revoke { id, by: op });
            }
        }
        if split < entries.len() {
            prop_assert!(replica.sync_from(&log), "prefix replica must adopt");
        }
        prop_assert_eq!(replica.tip_hash(), log.tip_hash());
        prop_assert_eq!(
            replica.grant_table(SimTime::from_secs(1)).len(),
            table.len()
        );
    }

    /// With no faults active, a federation answers every request exactly
    /// like one monolithic registry over the same area: same grant/deny
    /// outcome, same channel, same expiry (grant ids differ — zones mint
    /// from disjoint namespaces). The fault layer's equivalence oracle,
    /// mirroring the PR 5 FIB-vs-linear pattern.
    ///
    /// Holds under the exclusive policy with contours ≤ 50 km: the border
    /// exchange queries `contour + 50 km`, which then covers every grant
    /// that could possibly conflict, so the federation sees exactly the
    /// conflicts the monolith sees.
    #[test]
    fn federation_equivalent_to_single_registry_when_healthy(
        reqs in prop::collection::vec(arb_request(), 1..40),
    ) {
        let plan = ChannelPlan::for_band(Band::band5(), 10.0);
        let mut single = SpectrumRegistry::exclusive(plan, 55.0);
        let mut fed = FederatedRegistry::new(vec![
            Zone::new(
                "west",
                Rect::new(Point::new(-51.0, -51.0), Point::new(0.0, 51.0)),
                SpectrumRegistry::exclusive(plan, 55.0),
            ),
            Zone::new(
                "east",
                Rect::new(Point::new(0.0, -51.0), Point::new(51.0, 51.0)),
                SpectrumRegistry::exclusive(plan, 55.0),
            ),
        ]);
        let now = SimTime::ZERO;
        for (i, r) in reqs.into_iter().enumerate() {
            let a = single.request(r, now);
            let b = fed.request(r, now);
            match (a, b) {
                (Ok(ga), Ok(gb)) => {
                    prop_assert_eq!(ga.channel, gb.channel, "request {}", i);
                    prop_assert_eq!(ga.expires_at, gb.expires_at, "request {}", i);
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "request {} diverged: single={:?} federated={:?}",
                    i, a, b
                ),
            }
        }
        let total: usize = fed
            .zones()
            .iter()
            .map(|z| z.registry.active_count(now))
            .sum();
        prop_assert_eq!(single.active_count(now), total);
    }

    /// Compaction at an arbitrary point preserves the derived table, keeps
    /// the chain verifiable, and lagging replicas still converge.
    #[test]
    fn compaction_preserves_invariants(
        entries in prop::collection::vec((0u64..10, 0u64..5, any::<bool>()), 1..30),
        cut in 0usize..30,
    ) {
        let mk = |id: u64, op: u64| LicenseGrant {
            id,
            operator: op,
            location: Point::new(id as f64, 0.0),
            channel: 0,
            max_eirp_dbm: 50.0,
            contour_km: 10.0,
            granted_at: SimTime::ZERO,
            expires_at: SimTime::ZERO + SimDuration::from_secs(3600),
        };
        let cut = cut.min(entries.len());
        let mut plain = ReplicatedLog::new();
        let mut compacted = ReplicatedLog::new();
        let mut replica = ReplicatedLog::new();
        for (i, &(id, op, is_grant)) in entries.iter().enumerate() {
            let e = if is_grant {
                Entry::Grant(mk(id, op))
            } else {
                Entry::Revoke { id, by: op }
            };
            plain.append(e);
            compacted.append(e);
            if i < cut {
                replica.append(e);
            }
            if i + 1 == cut {
                compacted.compact(SimTime::from_secs(1));
            }
        }
        prop_assert!(compacted.verify());
        prop_assert_eq!(compacted.height(), plain.height());
        let now = SimTime::from_secs(1);
        let mut a = compacted.grant_table(now);
        let mut b = plain.grant_table(now);
        a.sort_by_key(|g| g.id);
        b.sort_by_key(|g| g.id);
        prop_assert_eq!(a, b, "compaction must not change the table");
        if cut < entries.len() {
            prop_assert!(replica.sync_from(&compacted), "replica adopts across the boundary");
        }
        prop_assert_eq!(
            replica.grant_table(now).len(),
            compacted.grant_table(now).len()
        );
    }
}
