//! End-to-end tamper rejection for the replicated log: corrupt one block's
//! payload, link, or hash (or a folded snapshot grant) in a peer's chain
//! and both `verify()` and `sync_from` must refuse it — the property that
//! makes longest-*valid*-chain adoption safe against on-the-wire tampering.

use dlte_registry::replicated::{Block, Entry, LogSnapshot, ReplicatedLog};
use dlte_registry::{LicenseGrant, Point};
use dlte_sim::{SimDuration, SimTime};

fn grant(id: u64, op: u64, x: f64) -> LicenseGrant {
    LicenseGrant {
        id,
        operator: op,
        location: Point::new(x, 0.0),
        channel: 0,
        max_eirp_dbm: 50.0,
        contour_km: 10.0,
        granted_at: SimTime::ZERO,
        expires_at: SimTime::ZERO + SimDuration::from_secs(3600),
    }
}

fn chain(n: u64) -> ReplicatedLog {
    let mut log = ReplicatedLog::new();
    for i in 0..n {
        log.append(Entry::Grant(grant(i + 1, (i + 1) * 10, i as f64 * 25.0)));
    }
    log
}

/// A peer presents its chain as raw data; mutate one field of one block
/// the way an attacker (or bit rot) would, then reconstruct through the
/// same serde path a wire transfer uses.
fn corrupted(log: &ReplicatedLog, field: &str, victim_height: u64) -> ReplicatedLog {
    let json = serde_json::to_string(log.blocks()).expect("serialize chain");
    let mut blocks: Vec<Block> = serde_json::from_str(&json).expect("parse chain");
    let b = &mut blocks[victim_height as usize];
    match field {
        "payload" => {
            if let Entry::Grant(g) = &mut b.entry {
                g.expires_at += SimDuration::from_secs(9999);
            }
        }
        "hash" => b.hash ^= 1,
        "prev" => b.prev_hash ^= 1,
        _ => unreachable!("unknown field {field}"),
    }
    ReplicatedLog::from_parts(None, blocks)
}

#[test]
fn tampered_block_fails_verify_and_sync() {
    let honest = chain(4);
    assert!(honest.verify());
    for field in ["payload", "hash", "prev"] {
        for victim in 0..4 {
            let evil = corrupted(&honest, field, victim);
            assert!(
                !evil.verify(),
                "corrupting {field} at height {victim} must fail verify"
            );
            // A shorter replica refuses the longer corrupted chain and
            // still adopts the honest one afterwards.
            let mut replica = chain(2);
            assert!(
                !replica.sync_from(&evil),
                "sync adopted a {field}-corrupted chain (victim {victim})"
            );
            assert_eq!(replica.height(), 2, "refusal must not mutate");
            assert!(replica.sync_from(&honest));
            assert_eq!(replica.tip_hash(), honest.tip_hash());
        }
    }
}

#[test]
fn tampered_compaction_snapshot_fails_verify_and_sync() {
    let mut honest = chain(4);
    honest.compact(SimTime::from_secs(1));
    honest.append(Entry::Grant(grant(9, 90, 90.0)));
    assert!(honest.verify());
    // Corrupt one folded grant inside the hash-anchored snapshot.
    let snap = honest.snapshot().expect("compacted").clone();
    let mut grants = snap.grants.clone();
    grants[0].channel ^= 1;
    let evil = ReplicatedLog::from_parts(
        Some(LogSnapshot { grants, ..snap }),
        honest.blocks().to_vec(),
    );
    assert!(!evil.verify(), "snapshot tamper must fail verify");
    let mut replica = ReplicatedLog::new();
    assert!(!replica.sync_from(&evil), "bootstrap must still verify");
    assert!(replica.sync_from(&honest));
    assert_eq!(replica.tip_hash(), honest.tip_hash());
}

#[test]
fn forged_longer_chain_with_fake_snapshot_is_refused() {
    // An attacker forges a "longer" chain by inflating base_height in a
    // self-consistent snapshot. Self-consistency is not enough to rewrite
    // a replica's retained history: the replica's tip must anchor.
    let honest = chain(3);
    let mut replica = chain(3);
    // Forge: a snapshot claiming height 10 with arbitrary grants and a
    // valid snap_hash (built through the real compaction path).
    let mut forge = chain(1);
    for i in 0..9 {
        forge.append(Entry::Grant(grant(100 + i, 7, i as f64)));
    }
    forge.compact(SimTime::from_secs(1));
    assert!(forge.verify(), "the forged chain is self-consistent");
    // The replica's retained tip (height 2) was pruned by the forger, so
    // this lands on the snapshot hand-off path — which is a deliberate
    // trust-on-bootstrap trade. But a replica holding history *ahead* of
    // the forged tip refuses: not longer → no adoption.
    let mut ahead = chain(12);
    assert!(!ahead.sync_from(&forge));
    assert_eq!(ahead.height(), 12);
    // And the honest same-length chain is never displaced either.
    assert!(!replica.sync_from(&honest), "equal height: no adoption");
    assert_eq!(replica.tip_hash(), honest.tip_hash());
}
