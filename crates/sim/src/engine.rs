//! The event queue and simulation driver.
//!
//! The engine is generic over the *world* — the mutable state of a whole
//! experiment — and its event type. A [`World`] receives each event along
//! with the current time and a mutable handle to the [`EventQueue`] so it can
//! schedule follow-up events. Determinism guarantees:
//!
//! * events fire in non-decreasing time order;
//! * events scheduled for the same instant fire in **canonical key order**
//!   `(at, origin, oseq)`: `origin` identifies who scheduled the event
//!   (0 = external/control scheduling, `node + 1` = a world entity — see
//!   [`EventQueue::set_origin`]) and `oseq` is that origin's private
//!   monotone counter. Events from the same origin therefore stay FIFO,
//!   and ties across origins break by origin id — an order that does not
//!   depend on any queue-global state;
//! * cancellation via [`EventKey`] marks the event's slab slot vacant in
//!   O(1) — no per-pop hash probing; the heap key left behind is discarded
//!   when it surfaces (its slot no longer matches its guard number).
//!
//! The canonical key exists for the sharded engine (see [`crate::shard`]):
//! because `(origin, oseq)` pairs are a pure function of each origin's own
//! scheduling history — not of how schedules from different origins
//! interleave — the same logical event gets the same key whether the
//! topology runs in one queue or is partitioned across many, which is what
//! makes dispatch order (and every golden) shard-count-invariant.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Below this slab capacity, [`EventQueue::reclaim`] is a no-op — shrinking
/// a small queue at every drain boundary would churn the allocator for a few
/// hundred bytes of savings.
pub const RECLAIM_MIN_SLOTS: usize = 64;

/// Identifies a scheduled event so it can be canceled before it fires.
/// Internally `(slot, guard)`: the slot indexes the queue's slab, and the
/// guard number protects against slot reuse — a key whose event already
/// fired (or was canceled) can never touch the slot's next occupant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey {
    slot: u32,
    guard: u64,
}

/// The mutable state of a simulation, driven by events of type `Self::Event`.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handle one event. `now` is the event's firing time; new events may be
    /// scheduled on `queue` (at or after `now`).
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// True for control/bookkeeping events (fault injections, start
    /// broadcasts) that should not count as dispatched simulation work.
    /// The sharded engine replicates control events into every shard, so
    /// excluding them keeps work counters shard-count-invariant.
    fn is_control(_event: &Self::Event) -> bool {
        false
    }
}

/// A heap entry: the canonical ordering key plus the slab slot holding the
/// payload. Ordered by `(at, origin, oseq)` — earliest time first, then
/// lowest origin, then that origin's FIFO counter. `(origin, oseq)` is
/// unique per queue, so the slot never participates in ordering.
#[derive(Clone, Copy, PartialEq, Eq)]
struct HeapKey {
    at: SimTime,
    origin: u64,
    oseq: u64,
    slot: u32,
    guard: u64,
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.origin, self.oseq).cmp(&(other.at, other.origin, other.oseq))
    }
}

/// One slab entry. `event: None` means vacant (fired or canceled); `guard`
/// stays behind as the reuse guard — a heap key or [`EventKey`] only acts
/// on the slot while its guard number matches.
struct Slot<E> {
    guard: u64,
    event: Option<E>,
}

/// A priority queue of future events: a slab of scheduled payloads indexed
/// by a heap of canonical `(time, origin, oseq)` keys. Cancellation vacates
/// the slab slot by index — O(1), no hashing — and the orphaned heap key is
/// discarded whenever it reaches the top.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapKey>>,
    slots: Vec<Slot<E>>,
    /// Vacant slab indices, reused LIFO.
    free: Vec<u32>,
    /// Number of scheduled, not-yet-canceled events.
    live: usize,
    /// Slot-reuse guard counter (never ordering-relevant).
    next_guard: u64,
    /// The origin tag stamped on subsequent `schedule_*` calls.
    cur_origin: u64,
    /// Per-origin FIFO counters, indexed by origin id.
    oseqs: Vec<u64>,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_guard: 0,
            cur_origin: 0,
            oseqs: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    /// The firing time of the event currently being dispatched (or the last
    /// dispatched event). Before the first event this is [`SimTime::ZERO`].
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Set the origin tag for subsequent `schedule_*` calls. Origin `0` is
    /// reserved for external/control scheduling (pre-run setup, fault
    /// plans); worlds that partition across shards tag handler dispatches
    /// with `entity_id + 1` so same-time ties resolve identically at every
    /// shard count. Worlds that never shard can ignore this entirely —
    /// everything defaults to origin 0, which preserves plain global FIFO.
    pub fn set_origin(&mut self, origin: u64) {
        self.cur_origin = origin;
    }

    /// The origin tag currently stamped on `schedule_*` calls.
    pub fn origin(&self) -> u64 {
        self.cur_origin
    }

    /// Allocate the next `(origin, oseq)` pair under the current origin
    /// *without* inserting an event — used when the event is exported to
    /// another shard's queue. Consuming the counter here keeps this origin's
    /// subsequent local schedules bit-identical to the single-shard run,
    /// where the exported event would have claimed the same position.
    pub fn alloc_key(&mut self) -> (u64, u64) {
        let origin = self.cur_origin;
        (origin, self.bump_oseq(origin))
    }

    fn bump_oseq(&mut self, origin: u64) -> u64 {
        let idx = origin as usize;
        if idx >= self.oseqs.len() {
            self.oseqs.resize(idx + 1, 0);
        }
        let c = &mut self.oseqs[idx];
        let v = *c;
        *c += 1;
        v
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error; the event is clamped to `now` so simulation time never
    /// runs backwards, and a debug assertion fires to surface the bug.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        let (origin, oseq) = self.alloc_key();
        self.schedule_keyed(at, origin, oseq, event)
    }

    /// Schedule `event` with an explicit canonical key. Used by the shard
    /// driver to deliver cross-shard messages: the key was allocated (via
    /// [`EventQueue::alloc_key`]) on the sending shard, so the event sorts
    /// exactly where it would have in a single-queue run. Each origin must
    /// be keyed from exactly one allocator — reusing an `(origin, oseq)`
    /// pair breaks the total order.
    pub fn schedule_keyed(&mut self, at: SimTime, origin: u64, oseq: u64, event: E) -> EventKey {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let guard = self.next_guard;
        self.next_guard += 1;
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Slot {
                    guard,
                    event: Some(event),
                };
                i
            }
            None => {
                debug_assert!(self.slots.len() < u32::MAX as usize);
                self.slots.push(Slot {
                    guard,
                    event: Some(event),
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(Reverse(HeapKey {
            at,
            origin,
            oseq,
            slot,
            guard,
        }));
        self.live += 1;
        EventKey { slot, guard }
    }

    /// Schedule `event` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventKey {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedule `event` to fire immediately (after all events already
    /// scheduled for the current instant by this origin).
    pub fn schedule_now(&mut self, event: E) -> EventKey {
        self.schedule_at(self.now, event)
    }

    /// Cancel a previously scheduled event: vacate its slab slot by index.
    /// Idempotent; canceling an event that already fired is a no-op (the
    /// slot's guard number no longer matches, the slot is vacant, or —
    /// after a [`EventQueue::reclaim`] — the slot index is out of bounds).
    pub fn cancel(&mut self, key: EventKey) {
        let Some(s) = self.slots.get_mut(key.slot as usize) else {
            return; // stale key from before a slab reclaim
        };
        if s.guard == key.guard && s.event.is_some() {
            s.event = None;
            self.free.push(key.slot);
            self.live -= 1;
        }
    }

    /// Number of live (scheduled and not canceled) events in the queue.
    /// Canceled events never count — `dlte-check`'s in-flight audits can
    /// read this without knowing how cancellation is implemented.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Iterate over the pending *live* events (canceled entries are skipped),
    /// in no particular order. Post-run audits use this to count events still
    /// in flight — e.g. packets serialized onto a link but not yet arrived —
    /// without disturbing the queue.
    pub fn iter_pending(&self) -> impl Iterator<Item = &E> {
        self.slots.iter().filter_map(|s| s.event.as_ref())
    }

    /// True if no live events remain. Orphaned heap keys of canceled events
    /// are invisible here: the live count already excludes them, so a queue
    /// whose only entries were canceled reports empty, never a phantom
    /// event.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Firing time of the next live event, if any. Never reports a canceled
    /// event's time: orphaned heap keys at the top are lazily discarded
    /// here, exactly as `pop` would.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_stale_top();
        self.heap.peek().map(|Reverse(k)| k.at)
    }

    /// Whether this heap key still refers to the event it was pushed for.
    fn key_is_live(&self, k: HeapKey) -> bool {
        let s = &self.slots[k.slot as usize];
        s.guard == k.guard && s.event.is_some()
    }

    /// Drop canceled events' orphaned keys off the heap top until a live
    /// key (or nothing) is exposed. Amortized O(1): each key is popped at
    /// most once over the queue's lifetime, whether here or in
    /// `pop_at_or_before`.
    fn purge_stale_top(&mut self) {
        while let Some(&Reverse(k)) = self.heap.peek() {
            if self.key_is_live(k) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Slab capacity in slots — how much memory the queue holds onto for
    /// event storage, live or not. Exposed so reclamation tests (and curious
    /// profilers) can watch [`EventQueue::reclaim`] work.
    pub fn slot_capacity(&self) -> usize {
        self.slots.capacity()
    }

    /// Release the slab, free list, and heap storage if the queue is fully
    /// drained. The slab is grow-only during a run (slots are reused, never
    /// shrunk), so a burst — a handover storm, a chaos fault volley — leaves
    /// its high-water mark allocated forever. The drivers call this at drain
    /// boundaries (end of `run_until`, which the sharded engine hits for
    /// idle shards at every idle-jump epoch) to give the memory back.
    ///
    /// No-op unless the queue is empty (live events must keep their slots)
    /// or still small ([`RECLAIM_MIN_SLOTS`]): reclaiming a handful of slots
    /// just to re-grow them next epoch would thrash the allocator.
    ///
    /// Safety of outstanding [`EventKey`]s: guards are monotone across a
    /// reclaim (`next_guard` is not reset), so a stale key can never match a
    /// post-reclaim occupant of the same slot index, and `cancel` bounds-
    /// checks the index against the shrunken slab.
    pub fn reclaim(&mut self) {
        if self.live != 0 || self.slots.capacity() < RECLAIM_MIN_SLOTS {
            return;
        }
        // All slots are vacant and every heap key is an orphan: drop the lot.
        self.slots = Vec::new();
        self.free = Vec::new();
        self.heap = BinaryHeap::new();
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_at_or_before(SimTime::MAX)
    }

    /// Pop the next live event if it fires at or before `horizon`. Orphaned
    /// keys of canceled events are discarded along the way regardless of
    /// their time, so the queue never reports a horizon stop just because a
    /// canceled key preceded the next live event.
    fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        loop {
            let &Reverse(k) = self.heap.peek()?;
            if !self.key_is_live(k) {
                self.heap.pop();
                continue;
            }
            if k.at > horizon {
                // Live event beyond the horizon: leave it in place.
                return None;
            }
            self.heap.pop();
            let s = &mut self.slots[k.slot as usize];
            let event = s.event.take().expect("live key's slot vanished");
            self.free.push(k.slot);
            self.live -= 1;
            self.now = k.at;
            return Some((k.at, event));
        }
    }
}

/// Outcome of running a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway-loop backstop).
    BudgetExhausted,
}

/// Driver that owns a [`World`] and its [`EventQueue`].
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    events_dispatched: u64,
}

impl<W: World> Simulation<W> {
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            events_dispatched: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total non-control events dispatched so far (see [`World::is_control`]).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup/teardown between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Access the queue for seeding initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Immutable access to the queue (post-run audits of pending events).
    pub fn queue(&self) -> &EventQueue<W::Event> {
        &self.queue
    }

    /// Dispatch a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((t, ev)) => {
                if !W::is_control(&ev) {
                    self.events_dispatched += 1;
                }
                self.queue.set_origin(0);
                self.world.handle(t, ev, &mut self.queue);
                self.queue.set_origin(0);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains, the simulated clock passes `horizon`, or
    /// `max_events` have been dispatched. Events scheduled exactly at the
    /// horizon still fire; the first event strictly after it does not.
    ///
    /// The run's event count and simulated-time coverage are credited to the
    /// calling thread's instrumentation tally (see [`crate::report`]).
    /// Control events (per [`World::is_control`]) consume budget but are not
    /// counted as dispatched work.
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        let started_at = self.queue.now();
        let mut budget = max_events;
        let mut dispatched: u64 = 0;
        let outcome = loop {
            if budget == 0 {
                break RunOutcome::BudgetExhausted;
            }
            match self.queue.pop_at_or_before(horizon) {
                Some((t, ev)) => {
                    if !W::is_control(&ev) {
                        self.events_dispatched += 1;
                        dispatched += 1;
                    }
                    // The world tags handler dispatches with their own
                    // origin; everything else (including the world's own
                    // bookkeeping) schedules as origin 0.
                    self.queue.set_origin(0);
                    self.world.handle(t, ev, &mut self.queue);
                    self.queue.set_origin(0);
                    budget -= 1;
                }
                None => {
                    break if self.queue.peek_time().is_some() {
                        RunOutcome::HorizonReached
                    } else {
                        // Fully drained: hand the slab's high-water mark back
                        // to the allocator. In the sharded engine idle shards
                        // drain every idle-jump epoch, so bursty queues shrink
                        // as soon as the burst passes.
                        self.queue.reclaim();
                        RunOutcome::Drained
                    };
                }
            }
        };
        let covered = self.queue.now().saturating_since(started_at);
        crate::report::note(dispatched, covered.as_nanos());
        static ENGINE_EVENTS: std::sync::OnceLock<dlte_obs::metrics::CounterId> =
            std::sync::OnceLock::new();
        ENGINE_EVENTS
            .get_or_init(|| dlte_obs::metrics::register_counter("engine_events"))
            .add(dispatched);
        dlte_obs::metrics::observe("engine_queue_depth", self.queue.pending() as f64);
        outcome
    }

    /// Run until the queue drains or `max_events` have fired.
    pub fn run_to_completion(&mut self, max_events: u64) -> RunOutcome {
        self.run_until(SimTime::MAX, max_events)
    }

    /// Consume the driver and return the world (for result extraction).
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order events arrive in.
    struct Recorder {
        seen: Vec<(u64, u32)>, // (millis, tag)
    }

    #[derive(Clone, Copy)]
    enum Ev {
        Tag(u32),
        /// Schedules two children `Tag(a)`/`Tag(b)` at +1ms and +2ms.
        Fanout(u32, u32),
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Tag(tag) => self.seen.push((now.as_millis(), tag)),
                Ev::Fanout(a, b) => {
                    queue.schedule_in(SimDuration::from_millis(1), Ev::Tag(a));
                    queue.schedule_in(SimDuration::from_millis(2), Ev::Tag(b));
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(30), Ev::Tag(3));
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        assert_eq!(sim.run_to_completion(100), RunOutcome::Drained);
        assert_eq!(sim.world().seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn same_time_events_fire_fifo() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for tag in 0..50 {
            sim.queue_mut()
                .schedule_at(SimTime::from_millis(5), Ev::Tag(tag));
        }
        sim.run_to_completion(1000);
        let tags: Vec<u32> = sim.world().seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn same_time_ties_break_by_origin_then_fifo() {
        // Origin 0 (external) sorts before entity origins; within an origin
        // scheduling order is preserved.
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let t = SimTime::from_millis(5);
        queue.set_origin(9);
        queue.schedule_at(t, Ev::Tag(90));
        queue.schedule_at(t, Ev::Tag(91));
        queue.set_origin(2);
        queue.schedule_at(t, Ev::Tag(20));
        queue.set_origin(0);
        queue.schedule_at(t, Ev::Tag(0));
        let mut order = Vec::new();
        while let Some((_, Ev::Tag(tag))) = queue.pop() {
            order.push(tag);
        }
        assert_eq!(order, vec![0, 20, 90, 91]);
    }

    #[test]
    fn keyed_schedule_sorts_like_local_allocation() {
        // An event inserted with an explicit pre-allocated key lands exactly
        // where the local allocation would have put it — the cross-shard
        // delivery invariant.
        let make = |remote: bool| {
            let mut queue: EventQueue<Ev> = EventQueue::new();
            let t = SimTime::from_millis(1);
            queue.set_origin(3);
            queue.schedule_at(t, Ev::Tag(1));
            if remote {
                let (origin, oseq) = queue.alloc_key();
                queue.set_origin(7);
                queue.schedule_at(t, Ev::Tag(3));
                queue.schedule_keyed(t, origin, oseq, Ev::Tag(2));
            } else {
                queue.schedule_at(t, Ev::Tag(2));
                queue.set_origin(7);
                queue.schedule_at(t, Ev::Tag(3));
            }
            let mut order = Vec::new();
            while let Some((_, Ev::Tag(tag))) = queue.pop() {
                order.push(tag);
            }
            order
        };
        assert_eq!(make(false), vec![1, 2, 3]);
        assert_eq!(make(true), make(false));
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(10), Ev::Fanout(7, 8));
        sim.run_to_completion(100);
        assert_eq!(sim.world().seen, vec![(11, 7), (12, 8)]);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        let keep = sim
            .queue_mut()
            .schedule_at(SimTime::from_millis(1), Ev::Tag(1));
        let kill = sim
            .queue_mut()
            .schedule_at(SimTime::from_millis(2), Ev::Tag(2));
        sim.queue_mut().cancel(kill);
        // Canceling twice (and canceling an already-fired key later) is fine.
        sim.queue_mut().cancel(kill);
        sim.run_to_completion(100);
        sim.queue_mut().cancel(keep);
        assert_eq!(sim.world().seen, vec![(1, 1)]);
    }

    #[test]
    fn canceling_the_only_event_empties_the_queue() {
        // Regression: tombstones at the heap top used to make `is_empty` /
        // `peek_time` report a phantom pending event.
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let only = queue.schedule_at(SimTime::from_millis(5), Ev::Tag(1));
        queue.cancel(only);
        assert!(queue.is_empty());
        assert_eq!(queue.peek_time(), None);
    }

    #[test]
    fn peek_skips_canceled_and_reports_next_live_event() {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let first = queue.schedule_at(SimTime::from_millis(1), Ev::Tag(1));
        let second = queue.schedule_at(SimTime::from_millis(2), Ev::Tag(2));
        queue.schedule_at(SimTime::from_millis(3), Ev::Tag(3));
        queue.cancel(first);
        queue.cancel(second);
        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(3)));
        assert!(!queue.is_empty());
    }

    #[test]
    fn run_after_canceling_everything_reports_drained() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        let a = sim
            .queue_mut()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        let b = sim
            .queue_mut()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        sim.queue_mut().cancel(a);
        sim.queue_mut().cancel(b);
        // A queue holding only tombstones must drain, not report a horizon
        // stop, even when the horizon sits before the canceled times.
        assert_eq!(
            sim.run_until(SimTime::from_millis(5), 100),
            RunOutcome::Drained
        );
        assert!(sim.world().seen.is_empty());
    }

    #[test]
    fn iter_pending_skips_canceled_entries() {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        queue.schedule_at(SimTime::from_millis(1), Ev::Tag(1));
        let dead = queue.schedule_at(SimTime::from_millis(2), Ev::Tag(2));
        queue.schedule_at(SimTime::from_millis(3), Ev::Tag(3));
        queue.cancel(dead);
        let mut tags: Vec<u32> = queue
            .iter_pending()
            .map(|e| match e {
                Ev::Tag(t) => *t,
                Ev::Fanout(..) => unreachable!(),
            })
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 3]);
        // `pending` agrees with the audit view: canceled events are gone.
        assert_eq!(queue.pending(), 2, "only live events count as pending");
    }

    #[test]
    fn pending_counts_live_events_only() {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let a = queue.schedule_at(SimTime::from_millis(1), Ev::Tag(1));
        let b = queue.schedule_at(SimTime::from_millis(2), Ev::Tag(2));
        assert_eq!(queue.pending(), 2);
        queue.cancel(a);
        assert_eq!(queue.pending(), 1, "cancellation drops the live count");
        queue.cancel(a); // idempotent
        assert_eq!(queue.pending(), 1);
        queue.cancel(b);
        assert_eq!(queue.pending(), 0);
        assert!(queue.is_empty());
    }

    #[test]
    fn slot_reuse_does_not_resurrect_stale_keys() {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let dead = queue.schedule_at(SimTime::from_millis(1), Ev::Tag(1));
        queue.cancel(dead);
        // The new event reuses the vacated slot; the stale key must not be
        // able to cancel it, and the orphaned heap key must not dispatch it
        // early.
        queue.schedule_at(SimTime::from_millis(5), Ev::Tag(2));
        queue.cancel(dead);
        assert_eq!(queue.pending(), 1, "stale cancel is a no-op");
        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(5)));
        let (at, ev) = queue.pop().expect("live event");
        assert_eq!(at, SimTime::from_millis(5));
        assert!(matches!(ev, Ev::Tag(2)));
        assert!(queue.is_empty());
    }

    #[test]
    fn reclaim_shrinks_slab_after_burst_then_drain() {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        for i in 0..1_000u32 {
            queue.schedule_at(SimTime::from_millis(i as u64), Ev::Tag(i));
        }
        let high_water = queue.slot_capacity();
        assert!(high_water >= 1_000, "burst grew the slab");
        while queue.pop().is_some() {}
        assert!(queue.is_empty());
        // Drained by hand (not via run_until): capacity is still held.
        assert!(queue.slot_capacity() >= 1_000, "slab is grow-only mid-run");
        queue.reclaim();
        assert_eq!(queue.slot_capacity(), 0, "reclaim released the slab");
        // The queue keeps working after a reclaim, and stale keys from
        // before the reclaim stay inert.
        let key = queue.schedule_at(SimTime::from_millis(5_000), Ev::Tag(7));
        assert_eq!(queue.pending(), 1);
        queue.cancel(key);
        assert!(queue.is_empty());
    }

    #[test]
    fn reclaim_is_a_no_op_while_events_live_or_queue_small() {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        for i in 0..1_000u32 {
            queue.schedule_at(SimTime::from_millis(i as u64), Ev::Tag(i));
        }
        queue.reclaim();
        assert!(
            queue.slot_capacity() >= 1_000,
            "live events pin the slab in place"
        );
        while queue.pop().is_some() {}
        queue.reclaim();
        // Small queues never shrink: re-growing a few slots each epoch would
        // cost more than the memory saves.
        let mut small: EventQueue<Ev> = EventQueue::new();
        for i in 0..4u32 {
            small.schedule_at(SimTime::from_millis(i as u64), Ev::Tag(i));
        }
        while small.pop().is_some() {}
        let before = small.slot_capacity();
        assert!(before < RECLAIM_MIN_SLOTS);
        small.reclaim();
        assert_eq!(small.slot_capacity(), before, "small slab left alone");
    }

    #[test]
    fn run_until_reclaims_on_drain() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for i in 0..1_000u32 {
            sim.queue_mut()
                .schedule_at(SimTime::from_millis(i as u64), Ev::Tag(i));
        }
        assert!(sim.queue().slot_capacity() >= 1_000);
        assert_eq!(sim.run_to_completion(10_000), RunOutcome::Drained);
        assert_eq!(
            sim.queue().slot_capacity(),
            0,
            "drained run hands the slab back"
        );
        assert_eq!(sim.world().seen.len(), 1_000);
    }

    #[test]
    fn stale_cancel_after_reclaim_does_not_touch_new_events() {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut keys = Vec::new();
        for i in 0..200u32 {
            keys.push(queue.schedule_at(SimTime::from_millis(i as u64), Ev::Tag(i)));
        }
        while queue.pop().is_some() {}
        queue.reclaim();
        // One new event lands in slot 0; every stale key (including the one
        // that used slot 0) must leave it alone — guards are monotone across
        // the reclaim and out-of-range slots are bounds-checked.
        queue.schedule_at(SimTime::from_millis(9_000), Ev::Tag(42));
        for key in keys {
            queue.cancel(key);
        }
        assert_eq!(queue.pending(), 1, "stale cancels are no-ops");
        let (_, ev) = queue.pop().expect("survivor");
        assert!(matches!(ev, Ev::Tag(42)));
    }

    #[test]
    fn horizon_stops_before_later_events() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(30), Ev::Tag(3));
        let outcome = sim.run_until(SimTime::from_millis(20), 100);
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // The event *at* the horizon fires; the one after does not.
        assert_eq!(sim.world().seen, vec![(10, 1), (20, 2)]);
    }

    #[test]
    fn budget_backstop_halts_runaway() {
        struct Loopy;
        impl World for Loopy {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), queue: &mut EventQueue<()>) {
                queue.schedule_in(SimDuration::from_nanos(1), ());
            }
        }
        let mut sim = Simulation::new(Loopy);
        sim.queue_mut().schedule_now(());
        assert_eq!(sim.run_to_completion(1_000), RunOutcome::BudgetExhausted);
    }

    #[test]
    fn clock_is_monotone_and_tracks_events() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(42), Ev::Tag(0));
        sim.run_to_completion(10);
        assert_eq!(sim.now(), SimTime::from_millis(42));
        assert_eq!(sim.events_dispatched(), 1);
    }

    #[test]
    fn control_events_dispatch_but_do_not_count() {
        struct Ctl {
            work: u32,
            control: u32,
        }
        impl World for Ctl {
            type Event = bool; // true = control
            fn handle(&mut self, _: SimTime, ev: bool, _: &mut EventQueue<bool>) {
                if ev {
                    self.control += 1;
                } else {
                    self.work += 1;
                }
            }
            fn is_control(ev: &bool) -> bool {
                *ev
            }
        }
        let mut sim = Simulation::new(Ctl {
            work: 0,
            control: 0,
        });
        sim.queue_mut().schedule_at(SimTime::from_millis(1), true);
        sim.queue_mut().schedule_at(SimTime::from_millis(2), false);
        sim.queue_mut().schedule_at(SimTime::from_millis(3), true);
        let ((), rep) = crate::report::scope(|| {
            sim.run_to_completion(100);
        });
        assert_eq!(sim.world().control, 2, "control events still dispatch");
        assert_eq!(sim.world().work, 1);
        assert_eq!(sim.events_dispatched(), 1, "only work counts");
        assert_eq!(rep.events_dispatched, 1, "tally excludes control events");
    }
}
