//! The event queue and simulation driver.
//!
//! The engine is generic over the *world* — the mutable state of a whole
//! experiment — and its event type. A [`World`] receives each event along
//! with the current time and a mutable handle to the [`EventQueue`] so it can
//! schedule follow-up events. Determinism guarantees:
//!
//! * events fire in non-decreasing time order;
//! * events scheduled for the same instant fire in the order they were
//!   scheduled (FIFO tie-break on sequence number);
//! * cancellation is supported via [`EventKey`] tombstones, so canceling a
//!   timer is O(1) and does not disturb the heap.

use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Identifies a scheduled event so it can be canceled before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventKey(u64);

/// The mutable state of a simulation, driven by events of type `Self::Event`.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handle one event. `now` is the event's firing time; new events may be
    /// scheduled on `queue` (at or after `now`).
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

// Ordering for the max-heap wrapped in `Reverse`: earliest time first, then
// lowest sequence number (FIFO among same-time events).
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A priority queue of future events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    canceled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            canceled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The firing time of the event currently being dispatched (or the last
    /// dispatched event). Before the first event this is [`SimTime::ZERO`].
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Scheduling in the past is a
    /// logic error; the event is clamped to `now` so simulation time never
    /// runs backwards, and a debug assertion fires to surface the bug.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        debug_assert!(
            at >= self.now,
            "scheduled event in the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { at, seq, event }));
        EventKey(seq)
    }

    /// Schedule `event` after a relative delay from now.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventKey {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedule `event` to fire immediately (after all events already
    /// scheduled for the current instant).
    pub fn schedule_now(&mut self, event: E) -> EventKey {
        self.schedule_at(self.now, event)
    }

    /// Cancel a previously scheduled event. Idempotent; canceling an event
    /// that already fired is a no-op.
    pub fn cancel(&mut self, key: EventKey) {
        self.canceled.insert(key.0);
    }

    /// Number of pending (non-canceled tombstones still count until popped)
    /// entries in the queue. Intended for diagnostics only.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Iterate over the pending *live* events (canceled entries are skipped),
    /// in no particular order. Post-run audits use this to count events still
    /// in flight — e.g. packets serialized onto a link but not yet arrived —
    /// without disturbing the queue.
    pub fn iter_pending(&self) -> impl Iterator<Item = &E> {
        self.heap
            .iter()
            .filter(|Reverse(s)| !self.canceled.contains(&s.seq))
            .map(|Reverse(s)| &s.event)
    }

    /// True if no live events remain. Canceled tombstones at the top of the
    /// heap are purged first, so a queue whose only entries were canceled
    /// reports empty rather than a phantom event.
    pub fn is_empty(&mut self) -> bool {
        self.purge_canceled_top();
        self.heap.is_empty()
    }

    /// Firing time of the next live event, if any. Never reports a canceled
    /// event's time: tombstones at the heap top are lazily discarded here,
    /// exactly as `pop` would.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.purge_canceled_top();
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Drop canceled entries off the heap top until a live event (or nothing)
    /// is exposed. Amortized O(1): each tombstone is popped at most once over
    /// the queue's lifetime, whether here or in `pop_at_or_before`.
    fn purge_canceled_top(&mut self) {
        while let Some(Reverse(s)) = self.heap.peek() {
            if !self.canceled.contains(&s.seq) {
                break;
            }
            let Reverse(s) = self.heap.pop().expect("peeked entry vanished");
            self.canceled.remove(&s.seq);
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_at_or_before(SimTime::MAX)
    }

    /// Pop the next live event if it fires at or before `horizon`. Canceled
    /// tombstones encountered along the way are discarded regardless of their
    /// time, so the queue never dispatches a live event past the horizon just
    /// because a tombstone preceded it.
    fn pop_at_or_before(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        loop {
            let next_at = self.heap.peek().map(|Reverse(s)| s.at)?;
            let Reverse(s) = self.heap.pop().expect("peeked entry vanished");
            if self.canceled.remove(&s.seq) {
                continue;
            }
            if next_at > horizon {
                // Live event beyond the horizon: push it back and stop.
                self.heap.push(Reverse(s));
                return None;
            }
            self.now = s.at;
            return Some((s.at, s.event));
        }
    }
}

/// Outcome of running a simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway-loop backstop).
    BudgetExhausted,
}

/// Driver that owns a [`World`] and its [`EventQueue`].
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    events_dispatched: u64,
}

impl<W: World> Simulation<W> {
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            events_dispatched: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events dispatched so far.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Immutable access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (for setup/teardown between runs).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Access the queue for seeding initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Immutable access to the queue (post-run audits of pending events).
    pub fn queue(&self) -> &EventQueue<W::Event> {
        &self.queue
    }

    /// Dispatch a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        match self.queue.pop() {
            Some((t, ev)) => {
                self.events_dispatched += 1;
                self.world.handle(t, ev, &mut self.queue);
                true
            }
            None => false,
        }
    }

    /// Run until the queue drains, the simulated clock passes `horizon`, or
    /// `max_events` have been dispatched. Events scheduled exactly at the
    /// horizon still fire; the first event strictly after it does not.
    ///
    /// The run's event count and simulated-time coverage are credited to the
    /// calling thread's instrumentation tally (see [`crate::report`]).
    pub fn run_until(&mut self, horizon: SimTime, max_events: u64) -> RunOutcome {
        let started_at = self.queue.now();
        let mut budget = max_events;
        let mut dispatched: u64 = 0;
        let outcome = loop {
            if budget == 0 {
                break RunOutcome::BudgetExhausted;
            }
            match self.queue.pop_at_or_before(horizon) {
                Some((t, ev)) => {
                    self.events_dispatched += 1;
                    dispatched += 1;
                    self.world.handle(t, ev, &mut self.queue);
                    budget -= 1;
                }
                None => {
                    break if self.queue.peek_time().is_some() {
                        RunOutcome::HorizonReached
                    } else {
                        RunOutcome::Drained
                    };
                }
            }
        };
        let covered = self.queue.now().saturating_since(started_at);
        crate::report::note(dispatched, covered.as_nanos());
        dlte_obs::metrics::counter_add("engine_events", dispatched);
        dlte_obs::metrics::observe("engine_queue_depth", self.queue.pending() as f64);
        outcome
    }

    /// Run until the queue drains or `max_events` have fired.
    pub fn run_to_completion(&mut self, max_events: u64) -> RunOutcome {
        self.run_until(SimTime::MAX, max_events)
    }

    /// Consume the driver and return the world (for result extraction).
    pub fn into_world(self) -> W {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order events arrive in.
    struct Recorder {
        seen: Vec<(u64, u32)>, // (millis, tag)
    }

    #[derive(Clone, Copy)]
    enum Ev {
        Tag(u32),
        /// Schedules two children `Tag(a)`/`Tag(b)` at +1ms and +2ms.
        Fanout(u32, u32),
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, event: Ev, queue: &mut EventQueue<Ev>) {
            match event {
                Ev::Tag(tag) => self.seen.push((now.as_millis(), tag)),
                Ev::Fanout(a, b) => {
                    queue.schedule_in(SimDuration::from_millis(1), Ev::Tag(a));
                    queue.schedule_in(SimDuration::from_millis(2), Ev::Tag(b));
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(30), Ev::Tag(3));
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        assert_eq!(sim.run_to_completion(100), RunOutcome::Drained);
        assert_eq!(sim.world().seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn same_time_events_fire_fifo() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        for tag in 0..50 {
            sim.queue_mut()
                .schedule_at(SimTime::from_millis(5), Ev::Tag(tag));
        }
        sim.run_to_completion(1000);
        let tags: Vec<u32> = sim.world().seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(10), Ev::Fanout(7, 8));
        sim.run_to_completion(100);
        assert_eq!(sim.world().seen, vec![(11, 7), (12, 8)]);
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        let keep = sim
            .queue_mut()
            .schedule_at(SimTime::from_millis(1), Ev::Tag(1));
        let kill = sim
            .queue_mut()
            .schedule_at(SimTime::from_millis(2), Ev::Tag(2));
        sim.queue_mut().cancel(kill);
        // Canceling twice (and canceling an already-fired key later) is fine.
        sim.queue_mut().cancel(kill);
        sim.run_to_completion(100);
        sim.queue_mut().cancel(keep);
        assert_eq!(sim.world().seen, vec![(1, 1)]);
    }

    #[test]
    fn canceling_the_only_event_empties_the_queue() {
        // Regression: tombstones at the heap top used to make `is_empty` /
        // `peek_time` report a phantom pending event.
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let only = queue.schedule_at(SimTime::from_millis(5), Ev::Tag(1));
        queue.cancel(only);
        assert!(queue.is_empty());
        assert_eq!(queue.peek_time(), None);
    }

    #[test]
    fn peek_skips_canceled_and_reports_next_live_event() {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let first = queue.schedule_at(SimTime::from_millis(1), Ev::Tag(1));
        let second = queue.schedule_at(SimTime::from_millis(2), Ev::Tag(2));
        queue.schedule_at(SimTime::from_millis(3), Ev::Tag(3));
        queue.cancel(first);
        queue.cancel(second);
        assert_eq!(queue.peek_time(), Some(SimTime::from_millis(3)));
        assert!(!queue.is_empty());
    }

    #[test]
    fn run_after_canceling_everything_reports_drained() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        let a = sim
            .queue_mut()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        let b = sim
            .queue_mut()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        sim.queue_mut().cancel(a);
        sim.queue_mut().cancel(b);
        // A queue holding only tombstones must drain, not report a horizon
        // stop, even when the horizon sits before the canceled times.
        assert_eq!(
            sim.run_until(SimTime::from_millis(5), 100),
            RunOutcome::Drained
        );
        assert!(sim.world().seen.is_empty());
    }

    #[test]
    fn iter_pending_skips_canceled_entries() {
        let mut queue: EventQueue<Ev> = EventQueue::new();
        queue.schedule_at(SimTime::from_millis(1), Ev::Tag(1));
        let dead = queue.schedule_at(SimTime::from_millis(2), Ev::Tag(2));
        queue.schedule_at(SimTime::from_millis(3), Ev::Tag(3));
        queue.cancel(dead);
        let mut tags: Vec<u32> = queue
            .iter_pending()
            .map(|e| match e {
                Ev::Tag(t) => *t,
                Ev::Fanout(..) => unreachable!(),
            })
            .collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![1, 3]);
        // Iteration is read-only: the queue still pops everything live.
        assert_eq!(queue.pending(), 3, "tombstone still buried in the heap");
    }

    #[test]
    fn horizon_stops_before_later_events() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(10), Ev::Tag(1));
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(20), Ev::Tag(2));
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(30), Ev::Tag(3));
        let outcome = sim.run_until(SimTime::from_millis(20), 100);
        assert_eq!(outcome, RunOutcome::HorizonReached);
        // The event *at* the horizon fires; the one after does not.
        assert_eq!(sim.world().seen, vec![(10, 1), (20, 2)]);
    }

    #[test]
    fn budget_backstop_halts_runaway() {
        struct Loopy;
        impl World for Loopy {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), queue: &mut EventQueue<()>) {
                queue.schedule_in(SimDuration::from_nanos(1), ());
            }
        }
        let mut sim = Simulation::new(Loopy);
        sim.queue_mut().schedule_now(());
        assert_eq!(sim.run_to_completion(1_000), RunOutcome::BudgetExhausted);
    }

    #[test]
    fn clock_is_monotone_and_tracks_events() {
        let mut sim = Simulation::new(Recorder { seen: vec![] });
        sim.queue_mut()
            .schedule_at(SimTime::from_millis(42), Ev::Tag(0));
        sim.run_to_completion(10);
        assert_eq!(sim.now(), SimTime::from_millis(42));
        assert_eq!(sim.events_dispatched(), 1);
    }
}
