//! # dlte-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate every other `dlte-*` crate runs on. It provides:
//!
//! * a simulated clock with nanosecond resolution ([`SimTime`], [`SimDuration`]),
//! * a deterministic event queue and driver loop ([`EventQueue`], [`Simulation`],
//!   [`World`]),
//! * a seeded, forkable random number source ([`SimRng`]) so that every
//!   experiment in the dLTE reproduction is exactly repeatable from its seed,
//! * statistics collectors used by the experiment harness ([`stats`]),
//! * run instrumentation ([`report`]) and a deterministic thread fan-out
//!   ([`par_map`]) used by the experiment runner.
//!
//! ## Design notes
//!
//! Each shard of a simulation runs single-threaded and synchronous; the
//! deterministic engine makes every experiment reproducible bit-for-bit
//! and keeps the tests honest. Events scheduled for the same instant are
//! delivered in canonical `(time, origin, oseq)` order — a tie-break that
//! depends only on each scheduler's own history, never on global queue
//! state — which removes the classic source of heisen-results in
//! event-driven simulators *and* makes dispatch order independent of how
//! the topology is partitioned.
//!
//! Parallelism enters in two places, both deterministic:
//!
//! * *across* runs, [`par_map`] fans independent, seeded simulations out
//!   over threads and returns their results in input order, so a parallel
//!   sweep is bit-identical to a sequential one;
//! * *within* a run, [`shard::run_sharded`] partitions one topology into
//!   shards advancing under conservative (lookahead-barrier) time
//!   synchronization, with results bit-identical at any shard count.

pub mod engine;
pub mod par;
pub mod report;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use engine::{EventQueue, RunOutcome, Simulation, World};
pub use par::{par_map, set_jobs};
pub use report::RunReport;
pub use rng::SimRng;
pub use shard::{run_sharded, set_shards, shards, OutMsg, ShardPlan, ShardWorld};
pub use time::{SimDuration, SimTime};
