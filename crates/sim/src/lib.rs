//! # dlte-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate every other `dlte-*` crate runs on. It provides:
//!
//! * a simulated clock with nanosecond resolution ([`SimTime`], [`SimDuration`]),
//! * a deterministic event queue and driver loop ([`EventQueue`], [`Simulation`],
//!   [`World`]),
//! * a seeded, forkable random number source ([`SimRng`]) so that every
//!   experiment in the dLTE reproduction is exactly repeatable from its seed,
//! * statistics collectors used by the experiment harness ([`stats`]).
//!
//! ## Design notes
//!
//! The engine is intentionally single-threaded and synchronous. The paper's
//! claims are about *architecture* (where packets flow, who coordinates
//! spectrum), not about multicore performance of the simulator itself; a
//! deterministic engine makes every experiment reproducible bit-for-bit and
//! keeps the tests honest. Events scheduled for the same instant are delivered
//! in scheduling order (FIFO tie-break on a monotonically increasing sequence
//! number), which removes the classic source of heisen-results in event-driven
//! simulators.

pub mod engine;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{EventQueue, Simulation, World};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
