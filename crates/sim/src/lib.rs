//! # dlte-sim — deterministic discrete-event simulation engine
//!
//! This crate is the substrate every other `dlte-*` crate runs on. It provides:
//!
//! * a simulated clock with nanosecond resolution ([`SimTime`], [`SimDuration`]),
//! * a deterministic event queue and driver loop ([`EventQueue`], [`Simulation`],
//!   [`World`]),
//! * a seeded, forkable random number source ([`SimRng`]) so that every
//!   experiment in the dLTE reproduction is exactly repeatable from its seed,
//! * statistics collectors used by the experiment harness ([`stats`]),
//! * run instrumentation ([`report`]) and a deterministic thread fan-out
//!   ([`par_map`]) used by the experiment runner.
//!
//! ## Design notes
//!
//! Each simulation is intentionally single-threaded and synchronous. The
//! paper's claims are about *architecture* (where packets flow, who
//! coordinates spectrum), not about multicore performance of the simulator
//! itself; a deterministic engine makes every experiment reproducible
//! bit-for-bit and keeps the tests honest. Events scheduled for the same
//! instant are delivered in scheduling order (FIFO tie-break on a
//! monotonically increasing sequence number), which removes the classic
//! source of heisen-results in event-driven simulators.
//!
//! Parallelism lives *above* the engine: [`par_map`] fans independent,
//! seeded simulations out across threads and returns their results in input
//! order, so a parallel sweep is bit-identical to a sequential one.

pub mod engine;
pub mod par;
pub mod report;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{EventQueue, Simulation, World};
pub use par::{par_map, set_jobs};
pub use report::RunReport;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
