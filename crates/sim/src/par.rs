//! Deterministic fan-out across threads.
//!
//! [`par_map`] runs one closure per input on a small pool of scoped threads
//! and returns the results **in input order**, so a parallel sweep is
//! bit-identical to its sequential counterpart as long as each closure is a
//! pure function of its input (seeded experiments are — each sweep point
//! forks its own RNG from the point's seed). Worker threads' instrumentation
//! tallies are folded back into the calling thread, so a
//! [`report::scope`](crate::report::scope) around a parallel sweep still
//! counts every event.
//!
//! The worker count comes from [`set_jobs`] (the runner's `--jobs N` flag);
//! `0`/unset means one worker per available CPU.

use crate::report;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Global worker-count override. 0 = auto (one per available CPU).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the number of worker threads `par_map` uses. `0` restores the default
/// (one per available CPU). Affects subsequent calls process-wide.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The number of workers the next `par_map` call will use.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Apply `f` to every input, possibly in parallel, returning results in input
/// order. With one worker (or one input) this degenerates to a plain
/// sequential map on the calling thread — same results, same tallies.
///
/// Panics in a worker are propagated to the caller after all workers stop.
pub fn par_map<I, T, F>(inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = inputs.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }

    // Worker threads start with tracing off (it is thread-local); mirror the
    // caller's state so instrumented closures keep emitting. Each item's raw
    // records are captured on the worker and re-absorbed below in input
    // order, making the caller's event stream independent of `workers`.
    let tracing = dlte_obs::tracing_enabled();

    let work: Mutex<VecDeque<(usize, I)>> = Mutex::new(inputs.into_iter().enumerate().collect());
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut records: Vec<Vec<dlte_obs::RawRecord>> = (0..n).map(|_| Vec::new()).collect();
    let mut tally_deltas = Vec::with_capacity(workers);
    let mut metrics_deltas = Vec::with_capacity(workers);
    let mut panic_payload = None;

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let before = report::snapshot();
                    let start = std::time::Instant::now();
                    if tracing {
                        dlte_obs::set_tracing(true);
                    }
                    let mut produced = Vec::new();
                    loop {
                        // Lock only to claim the next item; run `f` unlocked.
                        let claimed = work.lock().unwrap().pop_front();
                        match claimed {
                            Some((idx, input)) => {
                                let value = f(input);
                                let recs = if tracing {
                                    dlte_obs::drain_raw()
                                } else {
                                    Vec::new()
                                };
                                produced.push((idx, value, recs));
                            }
                            None => break,
                        }
                    }
                    dlte_obs::metrics::observe(
                        "par_worker_ms",
                        start.elapsed().as_secs_f64() * 1e3,
                    );
                    (
                        produced,
                        report::snapshot().since(before),
                        dlte_obs::metrics::take(),
                    )
                })
            })
            .collect();

        for handle in handles {
            match handle.join() {
                Ok((produced, delta, metrics)) => {
                    for (idx, value, recs) in produced {
                        slots[idx] = Some(value);
                        records[idx] = recs;
                    }
                    tally_deltas.push(delta);
                    metrics_deltas.push(metrics);
                }
                Err(payload) => {
                    // Keep joining the rest so the scope exits cleanly, then
                    // re-raise the first panic.
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
    });

    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }

    for delta in tally_deltas {
        report::merge(delta);
    }
    for metrics in &metrics_deltas {
        dlte_obs::metrics::absorb(metrics);
    }
    if tracing {
        for recs in records {
            dlte_obs::absorb_raw(recs);
        }
    }

    slots
        .into_iter()
        .map(|slot| slot.expect("every input index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = inputs.iter().map(|&x| x * x).collect();
        set_jobs(4);
        let out = par_map(inputs, |x| x * x);
        set_jobs(0);
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_matches_sequential_for_seeded_work() {
        let draw = |seed: u64| {
            let mut rng = SimRng::new(seed);
            (0..100).map(|_| rng.unit()).sum::<f64>()
        };
        let seeds: Vec<u64> = (0..16).collect();
        set_jobs(1);
        let sequential = par_map(seeds.clone(), draw);
        set_jobs(4);
        let parallel = par_map(seeds, draw);
        set_jobs(0);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_tallies_fold_into_caller() {
        use crate::engine::{EventQueue, Simulation, World};
        use crate::time::{SimDuration, SimTime};

        struct Ticker(u32);
        impl World for Ticker {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), q: &mut EventQueue<()>) {
                if self.0 > 0 {
                    self.0 -= 1;
                    q.schedule_in(SimDuration::from_millis(1), ());
                }
            }
        }

        set_jobs(4);
        let ((), rep) = crate::report::scope(|| {
            par_map(vec![4u32; 8], |ticks| {
                let mut sim = Simulation::new(Ticker(ticks));
                sim.queue_mut().schedule_now(());
                sim.run_to_completion(1_000);
            });
        });
        set_jobs(0);
        // 8 sims × 5 events each (initial + 4 follow-ups).
        assert_eq!(rep.events_dispatched, 40);
        assert_eq!(rep.sim_time_ns, 8 * 4 * 1_000_000);
    }

    #[test]
    fn trace_capture_is_jobs_invariant() {
        use dlte_obs::{DropReason, Event};

        let run = |jobs: usize| {
            set_jobs(jobs);
            dlte_obs::set_tracing(true);
            par_map((0..12u64).collect(), |i| {
                // Two events per item, emitted on the worker thread.
                dlte_obs::emit(
                    i * 10,
                    i,
                    Event::Drop {
                        reason: DropReason::Queue,
                        bytes: i as u32,
                    },
                );
                dlte_obs::emit(i * 10 + 1, i, Event::FaultLink { link: i, up: true });
                i
            });
            let recs = dlte_obs::take_records();
            dlte_obs::set_tracing(false);
            set_jobs(0);
            recs
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(sequential.len(), 24);
        assert_eq!(sequential, parallel, "record stream depends on jobs");
        // Input order, densely sequenced.
        for (i, r) in sequential.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn worker_metrics_fold_into_caller() {
        let _ = dlte_obs::metrics::take();
        set_jobs(4);
        par_map((0..8u64).collect(), |i| {
            dlte_obs::metrics::counter_add("drops_queue", i);
        });
        set_jobs(0);
        let snap = dlte_obs::metrics::take();
        assert_eq!(snap.counters["drops_queue"], 28);
        assert!(snap.histograms.contains_key("par_worker_ms"));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        set_jobs(2);
        let result = std::panic::catch_unwind(|| {
            par_map(vec![0u32, 1, 2, 3], |x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        set_jobs(0);
        match result {
            Ok(_) => {}
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}
