//! Run instrumentation.
//!
//! Every call to [`Simulation::run_until`](crate::Simulation::run_until)
//! credits the calling thread's tally with the number of events it dispatched
//! and the span of simulated time it covered. [`scope`] brackets a closure,
//! measures wall-clock time around it, and turns the tally delta into a
//! [`RunReport`] — the instrumentation record the experiment runner attaches
//! to each result table.
//!
//! The tally is thread-local so concurrently running experiments don't mix
//! their counts; [`crate::par::par_map`] folds its worker threads' deltas
//! back into the calling thread, so a `scope` around a parallel sweep still
//! sees every event the sweep dispatched.

use dlte_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::time::Instant;

/// Instrumentation summary for one experiment run (or any `scope`d region).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
#[serde(default)]
pub struct RunReport {
    /// Wall-clock time spent inside the scope, milliseconds.
    pub wall_ms: f64,
    /// Simulation events dispatched inside the scope (summed across all
    /// `run_until` calls, including those on `par_map` worker threads).
    pub events_dispatched: u64,
    /// Simulated time covered, nanoseconds (summed across runs; a sweep over
    /// ten 60 s simulations reports 600 s).
    pub sim_time_ns: u64,
    /// Dispatch rate: `events_dispatched` per wall-clock second.
    pub events_per_sec: f64,
    /// Per-reason packet-drop breakdown (deterministic: sourced from the
    /// always-on `drops_*` metrics counters, independent of `--jobs`).
    pub drops: BTreeMap<String, u64>,
    /// Full metrics snapshot, attached only when the runner's `--metrics`
    /// flag asks for it (may contain wall-clock values).
    pub metrics: Option<MetricsSnapshot>,
    /// Heap allocations performed inside the scope. Only populated when the
    /// binary installs the counting allocator (`dlte-bench` built with the
    /// `count-allocs` feature); zero otherwise.
    pub allocs: u64,
    /// Bytes requested by those heap allocations.
    pub alloc_bytes: u64,
    /// Wire bytes duplicated by `Packet::clone` inside the scope (explicit
    /// instrumentation — counted even without the counting allocator).
    pub bytes_copied: u64,
}

impl RunReport {
    /// Simulated seconds covered, as a float.
    pub fn sim_secs(&self) -> f64 {
        self.sim_time_ns as f64 / 1e9
    }
}

/// A thread's accumulated work + memory counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub(crate) struct Tally {
    pub(crate) events: u64,
    pub(crate) sim_ns: u64,
    pub(crate) allocs: u64,
    pub(crate) alloc_bytes: u64,
    pub(crate) bytes_copied: u64,
}

impl Tally {
    pub(crate) fn since(self, earlier: Tally) -> Tally {
        Tally {
            events: self.events.wrapping_sub(earlier.events),
            sim_ns: self.sim_ns.wrapping_sub(earlier.sim_ns),
            allocs: self.allocs.wrapping_sub(earlier.allocs),
            alloc_bytes: self.alloc_bytes.wrapping_sub(earlier.alloc_bytes),
            bytes_copied: self.bytes_copied.wrapping_sub(earlier.bytes_copied),
        }
    }

    fn add(self, other: Tally) -> Tally {
        Tally {
            events: self.events.wrapping_add(other.events),
            sim_ns: self.sim_ns.wrapping_add(other.sim_ns),
            allocs: self.allocs.wrapping_add(other.allocs),
            alloc_bytes: self.alloc_bytes.wrapping_add(other.alloc_bytes),
            bytes_copied: self.bytes_copied.wrapping_add(other.bytes_copied),
        }
    }
}

thread_local! {
    // `Cell<Tally>` has no destructor, so const-initialized TLS access is a
    // plain memory read/write even from inside a `GlobalAlloc` impl — no lazy
    // init, no registered dtor, no reentrancy into the allocator.
    static TALLY: Cell<Tally> = const { Cell::new(Tally {
        events: 0, sim_ns: 0, allocs: 0, alloc_bytes: 0, bytes_copied: 0,
    }) };
}

/// Credit `events` units of work covering `sim_time` to the current thread's
/// tally. The event-queue driver calls this automatically from `run_until`;
/// fixed-step simulators (the TTI and slot loops in `dlte-mac`) call it from
/// their own `run` methods so radio experiments report real work too.
pub fn credit(events: u64, sim_time: crate::time::SimDuration) {
    note(events, sim_time.as_nanos());
}

/// Credit the current thread's tally. Called by the simulation driver.
pub(crate) fn note(events: u64, sim_ns: u64) {
    TALLY.with(|t| {
        let mut cur = t.get();
        cur.events = cur.events.wrapping_add(events);
        cur.sim_ns = cur.sim_ns.wrapping_add(sim_ns);
        t.set(cur);
    });
}

/// Record a heap allocation of `bytes` on the current thread's tally. Called
/// by the counting `#[global_allocator]` in `dlte-bench` (feature
/// `count-allocs`); must stay allocation-free, so it only touches the
/// const-initialized thread-local `Cell`.
pub fn note_alloc(bytes: usize) {
    TALLY.with(|t| {
        let mut cur = t.get();
        cur.allocs = cur.allocs.wrapping_add(1);
        cur.alloc_bytes = cur.alloc_bytes.wrapping_add(bytes as u64);
        t.set(cur);
    });
}

/// Record `bytes` wire bytes duplicated by a packet copy on the current
/// thread's tally. Called by `Packet::clone` in `dlte-net`.
pub fn note_copy(bytes: u64) {
    TALLY.with(|t| {
        let mut cur = t.get();
        cur.bytes_copied = cur.bytes_copied.wrapping_add(bytes);
        t.set(cur);
    });
}

/// Fold a worker thread's tally delta into the current thread.
pub(crate) fn merge(delta: Tally) {
    TALLY.with(|t| t.set(t.get().add(delta)));
}

/// Read the current thread's tally.
pub(crate) fn snapshot() -> Tally {
    TALLY.with(|t| t.get())
}

/// Run `f`, measuring wall-clock time and the simulation work it performed on
/// this thread (plus any `par_map` workers it spawned). Returns the closure's
/// output alongside the [`RunReport`].
pub fn scope<T>(f: impl FnOnce() -> T) -> (T, RunReport) {
    let before = snapshot();
    let start = Instant::now();
    let out = f();
    let wall = start.elapsed();
    let delta = snapshot().since(before);
    let wall_ms = wall.as_secs_f64() * 1e3;
    let events_per_sec = if wall.as_secs_f64() > 0.0 {
        delta.events as f64 / wall.as_secs_f64()
    } else {
        0.0
    };
    (
        out,
        RunReport {
            wall_ms,
            events_dispatched: delta.events,
            sim_time_ns: delta.sim_ns,
            events_per_sec,
            drops: BTreeMap::new(),
            metrics: None,
            allocs: delta.allocs,
            alloc_bytes: delta.alloc_bytes,
            bytes_copied: delta.bytes_copied,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EventQueue, Simulation, World};
    use crate::time::{SimDuration, SimTime};

    struct Ticker {
        remaining: u32,
    }

    impl World for Ticker {
        type Event = ();
        fn handle(&mut self, _now: SimTime, _ev: (), queue: &mut EventQueue<()>) {
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.schedule_in(SimDuration::from_millis(1), ());
            }
        }
    }

    fn run_ticker(ticks: u32) {
        let mut sim = Simulation::new(Ticker { remaining: ticks });
        sim.queue_mut().schedule_now(());
        sim.run_to_completion(10_000);
    }

    #[test]
    fn scope_counts_events_and_sim_time() {
        let ((), report) = scope(|| run_ticker(9));
        assert_eq!(report.events_dispatched, 10);
        assert_eq!(report.sim_time_ns, 9 * 1_000_000);
        assert!(report.wall_ms >= 0.0);
    }

    #[test]
    fn nested_scopes_do_not_double_count() {
        let ((), outer) = scope(|| {
            let ((), inner) = scope(|| run_ticker(4));
            assert_eq!(inner.events_dispatched, 5);
            run_ticker(2);
        });
        // Outer sees inner's work plus its own.
        assert_eq!(outer.events_dispatched, 5 + 3);
    }

    #[test]
    fn report_serializes_round_trip() {
        let ((), report) = scope(|| run_ticker(1));
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
