//! Deterministic, forkable randomness.
//!
//! Every experiment takes a single `u64` seed. Components that need
//! independent random streams fork from the root with a string label, so
//! adding a new consumer of randomness never perturbs the draws seen by
//! existing components — a property the experiment harness relies on when
//! comparing architectures on "the same" workload.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded random source for simulations.
///
/// Wraps ChaCha8 (fast, high quality, portable across platforms — unlike
/// `SmallRng`, whose algorithm may change between `rand` releases).
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl SimRng {
    /// Create a root RNG from an experiment seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream (or its root) was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream from a label.
    ///
    /// The child's seed mixes the parent seed and the label with FNV-1a, so
    /// `fork("ue-3")` is stable across runs and distinct from `fork("ue-4")`.
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::new(h)
    }

    /// Derive an independent child stream from an index (e.g. per-UE).
    pub fn fork_idx(&self, label: &str, idx: u64) -> SimRng {
        self.fork(&format!("{label}#{idx}"))
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi)` (half-open, like `gen_range`).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Exponentially distributed value with the given mean (inter-arrival
    /// times of Poisson processes).
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Invert the CDF; guard the log argument away from 0.
        let u = self.unit().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Normally distributed value (Box–Muller; one draw per call, the spare
    /// is discarded for simplicity — this is a simulator, not a HFT system).
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        debug_assert!(sigma >= 0.0);
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mu + sigma * z
    }

    /// Log-normally distributed value where the *underlying normal* has mean
    /// `mu_db` and std-dev `sigma_db`. Used directly for shadow fading in dB.
    pub fn lognormal_db(&mut self, mu_db: f64, sigma_db: f64) -> f64 {
        self.normal(mu_db, sigma_db)
    }

    /// Poisson-distributed count with the given mean (Knuth's method; fine
    /// for the small means used in workload generation).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!(mean >= 0.0);
        if mean == 0.0 {
            return 0;
        }
        // For large means fall back to the normal approximation to avoid the
        // O(mean) loop and underflow of exp(-mean).
        if mean > 30.0 {
            return self.normal(mean, mean.sqrt()).round().max(0.0) as u64;
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.unit();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

/// SplitMix64 finalizer: a strong, cheap 64-bit mixing function.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateless hash of a word sequence to a uniform `u64`.
///
/// This is the counter-based counterpart to [`SimRng`]: instead of drawing
/// from a shared stream (whose draw *order* would depend on event
/// interleaving), callers key each decision on stable identifiers — e.g.
/// `(seed, salt, packet_id, hop, link)` — so the outcome is a pure function
/// of the decision's identity. The sharded engine depends on this: per-link
/// loss and jitter draws must not change when the topology is partitioned.
pub fn hash_u64(words: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &w in words {
        h = mix(h ^ w).wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    mix(h)
}

/// Stateless hash of a word sequence to a uniform `f64` in `[0, 1)`.
/// Uses the top 53 bits of [`hash_u64`], so every representable value is an
/// exact multiple of 2^-53.
pub fn hash_unit(words: &[u64]) -> f64 {
    (hash_u64(words) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = SimRng::new(7);
        let mut x1 = root.fork("ue");
        let mut x2 = root.fork("ue");
        assert_eq!(x1.next_u64(), x2.next_u64(), "same label → same stream");
        let mut y = root.fork("enb");
        assert_ne!(x1.next_u64(), y.next_u64(), "different labels differ");
        let mut i0 = root.fork_idx("ue", 0);
        let mut i1 = root.fork_idx("ue", 1);
        assert_ne!(i0.next_u64(), i1.next_u64());
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "sample mean {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.15, "sd {}", var.sqrt());
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut r = SimRng::new(17);
        assert_eq!(r.poisson(0.0), 0);
        let n = 10_000;
        let mean_small: f64 = (0..n).map(|_| r.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean_small - 3.0).abs() < 0.15, "small {mean_small}");
        let mean_large: f64 = (0..n).map(|_| r.poisson(100.0) as f64).sum::<f64>() / n as f64;
        assert!((mean_large - 100.0).abs() < 1.5, "large {mean_large}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(19);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::new(29);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert!(r.choose(&[1, 2, 3]).is_some());
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        assert_eq!(hash_u64(&[1, 2, 3]), hash_u64(&[1, 2, 3]));
        assert_ne!(hash_u64(&[1, 2, 3]), hash_u64(&[1, 2, 4]));
        assert_ne!(hash_u64(&[1, 2, 3]), hash_u64(&[1, 3, 2]), "order matters");
        assert_ne!(hash_u64(&[0]), hash_u64(&[0, 0]), "length matters");
    }

    #[test]
    fn hash_unit_is_uniform_enough() {
        let n = 20_000u64;
        let mut sum = 0.0;
        for i in 0..n {
            let u = hash_unit(&[0xdead_beef, i]);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
