//! Conservative sharded execution of one simulation.
//!
//! [`par_map`](crate::par::par_map) parallelizes *across* independent runs;
//! this module parallelizes *within* a single run. The topology is
//! partitioned into N shards (a [`ShardPlan`] maps every node to a shard),
//! each shard owns its own [`Simulation`] — event queue, clock, node state —
//! and cross-shard traffic travels as explicit timestamped messages
//! ([`OutMsg`]) exchanged at synchronization barriers.
//!
//! ## The barrier protocol
//!
//! Synchronization is **conservative** (no rollback), with lookahead `L` =
//! the minimum latency of any inter-shard link. Time advances in epochs:
//!
//! 1. a zero-width epoch `[s, s]` flushes events scheduled exactly at the
//!    current safe time `s` (externally seeded work, fault injections between
//!    stepped segments) and exchanges the messages they produce;
//! 2. each regular epoch runs every shard independently over `(s, s + L]`,
//!    then exchanges outbound messages at the barrier.
//!
//! This is safe because a message sent while handling an event at time
//! `t > s` arrives at `t + L' ≥ t + L > s + L` — strictly *after* the epoch
//! being computed — so no shard can ever receive a message for simulated
//! time it has already executed. The receiving queue inserts the message
//! with the exact canonical key `(at, origin, oseq)` the sender allocated
//! (see [`EventQueue::schedule_keyed`](crate::EventQueue::schedule_keyed)),
//! which is what makes dispatch order — and therefore every golden, trace,
//! and work counter — bit-identical at 1, 2, or N shards.
//!
//! ## Merge rules
//!
//! At each barrier the runner folds the shards' instrumentation back into
//! the calling thread exactly like `par_map` does for sweeps: report tallies
//! are summed, metrics snapshots absorbed, and raw trace records from all
//! shards are concatenated and stably sorted by `(t_ns, node)` before being
//! absorbed. Within one `(t_ns, node)` pair all records come from the single
//! shard owning that node (already in canonical order), and records never
//! straddle an epoch boundary with equal timestamps, so the merged stream is
//! a pure function of the simulated system, not of the shard count.

use crate::engine::{RunOutcome, Simulation, World};
use crate::report;
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global shard-count knob (the runner's `--shards N` flag). 1 = classic
/// single-queue execution; 0 = auto (one shard per available CPU).
static SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Set the number of shards subsequent scenario builds partition into.
/// `1` restores classic single-queue execution; `0` means one shard per
/// available CPU. Affects subsequent builds process-wide.
pub fn set_shards(n: usize) {
    SHARDS.store(n, Ordering::Relaxed);
}

/// The number of shards the next scenario build will use.
pub fn shards() -> usize {
    match SHARDS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// A partition of the topology: which shard owns each node, and the
/// conservative lookahead the cut permits.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    n: usize,
    shard_of: Vec<usize>,
    lookahead: SimDuration,
}

impl ShardPlan {
    /// A degenerate single-shard plan (everything in shard 0).
    pub fn single(num_nodes: usize) -> Self {
        ShardPlan {
            n: 1,
            shard_of: vec![0; num_nodes],
            lookahead: SimDuration::MAX,
        }
    }

    /// Build a plan from an explicit node → shard map. `lookahead` must be
    /// the minimum latency of any link whose endpoints land in different
    /// shards ([`SimDuration::MAX`] if the cut severs no links at all).
    pub fn new(n: usize, shard_of: Vec<usize>, lookahead: SimDuration) -> Self {
        assert!(n >= 1, "a plan needs at least one shard");
        debug_assert!(shard_of.iter().all(|&s| s < n), "shard id out of range");
        assert!(
            n == 1 || !lookahead.is_zero(),
            "conservative sync needs positive lookahead: \
             every inter-shard link must have positive latency"
        );
        ShardPlan {
            n,
            shard_of,
            lookahead,
        }
    }

    /// Number of shards.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The shard owning `node`.
    pub fn shard_of(&self, node: usize) -> usize {
        self.shard_of[node]
    }

    /// The conservative lookahead (epoch width).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Number of nodes covered by the plan.
    pub fn num_nodes(&self) -> usize {
        self.shard_of.len()
    }
}

/// A cross-shard message: an event bound for another shard's queue, carrying
/// the canonical key the sending shard allocated for it.
#[derive(Clone, Debug)]
pub struct OutMsg<E> {
    /// Destination shard.
    pub shard: usize,
    /// Absolute delivery time.
    pub at: SimTime,
    /// Canonical key: the allocating origin...
    pub origin: u64,
    /// ...and its sequence number (see [`crate::EventQueue::alloc_key`]).
    pub oseq: u64,
    /// The event to deliver.
    pub event: E,
}

/// A [`World`] that can participate in sharded execution: instead of
/// scheduling events for nodes it does not own, it buffers them as
/// [`OutMsg`]s which the barrier runner collects and routes.
pub trait ShardWorld: World {
    /// Take the cross-shard messages produced since the last drain.
    fn drain_outbound(&mut self) -> Vec<OutMsg<Self::Event>>;
}

/// Run a set of shard simulations to `horizon` under the conservative
/// barrier protocol, with at most `max_events` dispatched **per shard**
/// (runaway backstop, same contract as
/// [`Simulation::run_until`](crate::Simulation::run_until)).
///
/// Returns [`RunOutcome::Drained`] once every shard's queue is empty and no
/// messages are in flight (so a `SimTime::MAX` horizon terminates),
/// [`RunOutcome::BudgetExhausted`] as soon as any shard exhausts its budget,
/// and [`RunOutcome::HorizonReached`] otherwise.
pub fn run_sharded<W>(
    shards: &mut [Simulation<W>],
    plan: &ShardPlan,
    horizon: SimTime,
    max_events: u64,
) -> RunOutcome
where
    W: ShardWorld + Send,
    W::Event: Send,
{
    assert_eq!(shards.len(), plan.n(), "one simulation per planned shard");
    let tracing = dlte_obs::tracing_enabled();

    if let [only] = shards {
        // Single shard: no barrier needed, but the trace segment still gets
        // the canonical (t_ns, node) merge order so captures are
        // bit-identical to the N-shard run.
        if !tracing {
            return only.run_until(horizon, max_events);
        }
        let earlier = dlte_obs::drain_raw();
        let outcome = only.run_until(horizon, max_events);
        let mut segment = dlte_obs::drain_raw();
        segment.sort_by_key(|&(t_ns, node, _)| (t_ns, node));
        dlte_obs::absorb_raw(earlier);
        dlte_obs::absorb_raw(segment);
        return outcome;
    }

    // Safe time: everything at or before `s` has been executed everywhere.
    // Individual shard clocks may lag `s` (an idle shard's clock only moves
    // when it dispatches), which is fine — epochs are driven by `s`.
    // External code (fault injection between stepped segments) must only
    // schedule at or after the *global* now, i.e. at or after `s`.
    let mut s = shards.iter().map(|sim| sim.now()).max().unwrap();
    let mut budgets: Vec<u64> = vec![max_events; shards.len()];
    // The initial epoch is zero-width: flush events sitting exactly at `s`
    // (externally seeded work, injections between stepped segments) so every
    // later message provably arrives strictly beyond its epoch's end.
    let mut epoch_end = s;

    loop {
        // --- run one epoch on every shard in parallel ---------------------
        let mut all_drained = true;
        let mut exhausted = false;
        let mut epoch_records: Vec<dlte_obs::RawRecord> = Vec::new();
        let mut inbound: Vec<OutMsg<W::Event>> = Vec::new();

        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .zip(budgets.iter().copied())
                .map(|(sim, budget)| {
                    scope.spawn(move || {
                        let before = report::snapshot();
                        if tracing {
                            dlte_obs::set_tracing(true);
                        }
                        let outcome = sim.run_until(epoch_end, budget);
                        let outbound = sim.world_mut().drain_outbound();
                        let recs = if tracing {
                            dlte_obs::drain_raw()
                        } else {
                            Vec::new()
                        };
                        (
                            outcome,
                            outbound,
                            recs,
                            report::snapshot().since(before),
                            dlte_obs::metrics::take(),
                        )
                    })
                })
                .collect();

            // Join in shard order so tallies, metrics, and trace records
            // fold deterministically; collect outbound for the exchange.
            for (shard_idx, handle) in handles.into_iter().enumerate() {
                let (outcome, outbound, recs, tally, metrics) =
                    handle.join().expect("shard worker panicked");
                match outcome {
                    RunOutcome::Drained => {}
                    RunOutcome::HorizonReached => all_drained = false,
                    RunOutcome::BudgetExhausted => exhausted = true,
                }
                budgets[shard_idx] = budgets[shard_idx].saturating_sub(tally.events);
                report::merge(tally);
                dlte_obs::metrics::absorb(&metrics);
                epoch_records.extend(recs);
                inbound.extend(outbound);
            }
        });

        // --- barrier: route messages into their destination queues --------
        let exchanged = inbound.len();
        for msg in inbound {
            debug_assert!(
                msg.at > epoch_end,
                "cross-shard message at {:?} violates lookahead (epoch end {:?})",
                msg.at,
                epoch_end
            );
            shards[msg.shard]
                .queue_mut()
                .schedule_keyed(msg.at, msg.origin, msg.oseq, msg.event);
        }

        if tracing {
            // Stable sort: ties within one (t_ns, node) keep their shard's
            // canonical emission order; a (t_ns, node) pair never spans
            // shards (a node lives in exactly one shard) nor epochs (epochs
            // partition time into disjoint half-open intervals).
            epoch_records.sort_by_key(|&(t_ns, node, _)| (t_ns, node));
            dlte_obs::absorb_raw(epoch_records);
        }

        if exhausted {
            return RunOutcome::BudgetExhausted;
        }
        if all_drained && exchanged == 0 {
            // Nothing pending anywhere and nothing in flight: done, even if
            // the horizon (possibly SimTime::MAX) lies far ahead.
            return RunOutcome::Drained;
        }
        if epoch_end >= horizon {
            return RunOutcome::HorizonReached;
        }
        s = epoch_end;
        // Next epoch: at least one lookahead wide. With no message in
        // flight (they were all exchanged above) every future event already
        // sits in some queue, so when the whole system is idle past `s + L`
        // it is safe to jump straight to the earliest pending event — any
        // message that event produces still lands at least `L` beyond it.
        let min_next = shards
            .iter_mut()
            .filter_map(|sim| sim.queue_mut().peek_time())
            .min();
        epoch_end = (s + plan.lookahead()).min(horizon);
        if let Some(next) = min_next {
            epoch_end = epoch_end.max(next.min(horizon));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EventQueue;

    const HOP: SimDuration = SimDuration::from_millis(5);

    /// Tokens circulating a ring of nodes; each hop takes `HOP`. Exercises
    /// cross-shard delivery, canonical-key export, and the drain contract.
    #[derive(Clone, Debug)]
    enum RingEv {
        Token { node: usize, ttl: u32 },
    }

    struct RingShard {
        my_shard: usize,
        plan: ShardPlan,
        /// (t_ms, node) of every token handled here, in dispatch order.
        log: Vec<(u64, usize)>,
        outbound: Vec<OutMsg<RingEv>>,
    }

    impl World for RingShard {
        type Event = RingEv;
        fn handle(&mut self, now: SimTime, ev: RingEv, queue: &mut EventQueue<RingEv>) {
            let RingEv::Token { node, ttl } = ev;
            assert_eq!(
                self.plan.shard_of(node),
                self.my_shard,
                "token delivered to the wrong shard"
            );
            self.log.push((now.as_millis(), node));
            if ttl == 0 {
                return;
            }
            queue.set_origin(node as u64 + 1);
            let next = (node + 1) % self.plan.num_nodes();
            let ev = RingEv::Token {
                node: next,
                ttl: ttl - 1,
            };
            let dest = self.plan.shard_of(next);
            if dest == self.my_shard {
                queue.schedule_at(now + HOP, ev);
            } else {
                let (origin, oseq) = queue.alloc_key();
                self.outbound.push(OutMsg {
                    shard: dest,
                    at: now + HOP,
                    origin,
                    oseq,
                    event: ev,
                });
            }
        }
    }

    impl ShardWorld for RingShard {
        fn drain_outbound(&mut self) -> Vec<OutMsg<RingEv>> {
            std::mem::take(&mut self.outbound)
        }
    }

    /// Run `tokens` tokens around a 6-node ring partitioned into `n` shards,
    /// returning the merged (t_ms, node) log sorted canonically plus total
    /// dispatched work.
    fn run_ring(n: usize, tokens: usize, ttl: u32, horizon: SimTime) -> (Vec<(u64, usize)>, u64) {
        let nodes = 6;
        let shard_of: Vec<usize> = (0..nodes).map(|i| i * n / nodes).collect();
        let plan = ShardPlan::new(n, shard_of, HOP);
        let mut sims: Vec<Simulation<RingShard>> = (0..n)
            .map(|k| {
                Simulation::new(RingShard {
                    my_shard: k,
                    plan: plan.clone(),
                    log: Vec::new(),
                    outbound: Vec::new(),
                })
            })
            .collect();
        for t in 0..tokens {
            let node = t % nodes;
            let shard = plan.shard_of(node);
            sims[shard]
                .queue_mut()
                .schedule_at(SimTime::ZERO, RingEv::Token { node, ttl });
        }
        let outcome = run_sharded(&mut sims, &plan, horizon, 1_000_000);
        assert_ne!(outcome, RunOutcome::BudgetExhausted);
        let dispatched = sims.iter().map(|s| s.events_dispatched()).sum();
        let mut log: Vec<(u64, usize)> =
            sims.into_iter().flat_map(|s| s.into_world().log).collect();
        log.sort_unstable();
        (log, dispatched)
    }

    #[test]
    fn sharded_run_matches_single_shard_bit_for_bit() {
        let horizon = SimTime::from_secs(1);
        let (log1, work1) = run_ring(1, 4, 37, horizon);
        for n in [2, 3, 6] {
            let (logn, workn) = run_ring(n, 4, 37, horizon);
            assert_eq!(logn, log1, "dispatch log differs at {n} shards");
            assert_eq!(workn, work1, "work counter differs at {n} shards");
        }
        // 4 tokens × (1 + 37 hops) each.
        assert_eq!(work1, 4 * 38);
    }

    #[test]
    fn max_horizon_drains_instead_of_spinning() {
        let (log, work) = run_ring(3, 2, 10, SimTime::MAX);
        assert_eq!(work, 2 * 11);
        assert_eq!(log.len(), work as usize);
    }

    #[test]
    fn budget_exhaustion_surfaces() {
        let nodes = 4;
        let plan = ShardPlan::new(2, vec![0, 0, 1, 1], HOP);
        let mut sims: Vec<Simulation<RingShard>> = (0..2)
            .map(|k| {
                Simulation::new(RingShard {
                    my_shard: k,
                    plan: plan.clone(),
                    log: Vec::new(),
                    outbound: Vec::new(),
                })
            })
            .collect();
        let _ = nodes;
        sims[0].queue_mut().schedule_at(
            SimTime::ZERO,
            RingEv::Token {
                node: 0,
                ttl: u32::MAX,
            },
        );
        let outcome = run_sharded(&mut sims, &plan, SimTime::MAX, 50);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn trace_capture_is_shard_count_invariant() {
        // A world that emits one trace record per handled event: the merged
        // record stream (and its dense seq numbering) must not depend on the
        // shard count.
        struct Tracer {
            my_shard: usize,
            plan: ShardPlan,
            outbound: Vec<OutMsg<RingEv>>,
        }
        impl World for Tracer {
            type Event = RingEv;
            fn handle(&mut self, now: SimTime, ev: RingEv, queue: &mut EventQueue<RingEv>) {
                let RingEv::Token { node, ttl } = ev;
                dlte_obs::emit(
                    now.as_nanos(),
                    node as u64,
                    dlte_obs::Event::Drop {
                        reason: dlte_obs::DropReason::Queue,
                        bytes: ttl,
                    },
                );
                if ttl == 0 {
                    return;
                }
                queue.set_origin(node as u64 + 1);
                let next = (node + 1) % self.plan.num_nodes();
                let ev = RingEv::Token {
                    node: next,
                    ttl: ttl - 1,
                };
                let dest = self.plan.shard_of(next);
                if dest == self.my_shard {
                    queue.schedule_at(now + HOP, ev);
                } else {
                    let (origin, oseq) = queue.alloc_key();
                    self.outbound.push(OutMsg {
                        shard: dest,
                        at: now + HOP,
                        origin,
                        oseq,
                        event: ev,
                    });
                }
            }
        }
        impl ShardWorld for Tracer {
            fn drain_outbound(&mut self) -> Vec<OutMsg<RingEv>> {
                std::mem::take(&mut self.outbound)
            }
        }

        let run = |n: usize| {
            let nodes = 4;
            let shard_of: Vec<usize> = (0..nodes).map(|i| i * n / nodes).collect();
            let plan = ShardPlan::new(n, shard_of, HOP);
            let mut sims: Vec<Simulation<Tracer>> = (0..n)
                .map(|k| {
                    Simulation::new(Tracer {
                        my_shard: k,
                        plan: plan.clone(),
                        outbound: Vec::new(),
                    })
                })
                .collect();
            dlte_obs::set_tracing(true);
            for t in 0..3usize {
                let node = t % nodes;
                sims[plan.shard_of(node)]
                    .queue_mut()
                    .schedule_at(SimTime::ZERO, RingEv::Token { node, ttl: 9 });
            }
            run_sharded(&mut sims, &plan, SimTime::MAX, 10_000);
            let recs = dlte_obs::take_records();
            dlte_obs::set_tracing(false);
            recs
        };
        let one = run(1);
        assert_eq!(one.len(), 30);
        for n in [2, 4] {
            assert_eq!(run(n), one, "trace stream differs at {n} shards");
        }
        for (i, r) in one.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "seq must be dense after merge");
        }
    }
}
