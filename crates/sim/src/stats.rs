//! Statistics collectors for the experiment harness.
//!
//! Everything here is exact rather than approximate: experiments in this
//! repository are small enough that keeping raw samples (for percentiles) is
//! cheaper than the complexity of sketches.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Running mean / variance via Welford's online algorithm.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact sample collector with percentile queries.
///
/// Percentile queries on an unsorted collector build a sorted view once and
/// cache it behind a `OnceLock`, so read-only reporting paths that ask for a
/// handful of quantiles (p50/p95/p99/min/max) sort at most once between
/// pushes instead of cloning and sorting per query. The cache is interior
/// state only: it never serializes, and pushes invalidate it. `OnceLock`
/// (rather than `RefCell`) keeps the collector `Send`/`Sync`, so per-shard
/// stats can cross the worker-thread boundary of the sharded engine.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
    sorted_view: OnceLock<Vec<f64>>,
}

// Manual impls keep the wire shape of the old derive (`values` + `sorted`)
// while leaving the query cache out of the serialized form — the vendored
// serde derive has no `#[serde(skip)]`.
impl Serialize for Samples {
    fn serialize_value(&self) -> serde::value::Value {
        let mut m = serde::value::Map::new();
        m.insert("values".into(), self.values.serialize_value());
        m.insert("sorted".into(), self.sorted.serialize_value());
        serde::value::Value::Object(m)
    }
}

impl Deserialize for Samples {
    fn deserialize_value(v: &serde::value::Value) -> Result<Self, serde::de::Error> {
        let m = v
            .as_object()
            .ok_or_else(|| serde::de::Error::custom("expected Samples object"))?;
        let values = match m.get("values") {
            Some(x) => Vec::<f64>::deserialize_value(x)?,
            None => Vec::new(),
        };
        let sorted = match m.get("sorted") {
            Some(x) => bool::deserialize_value(x)?,
            None => false,
        };
        Ok(Samples {
            values,
            sorted,
            sorted_view: OnceLock::new(),
        })
    }
}

impl Samples {
    pub fn new() -> Self {
        Samples {
            values: Vec::new(),
            sorted: true,
            sorted_view: OnceLock::new(),
        }
    }

    pub fn push(&mut self, x: f64) {
        self.values.push(x);
        self.sorted = false;
        self.sorted_view.take();
    }

    /// Record a duration in milliseconds (the unit the experiment tables use
    /// for latency columns).
    pub fn push_duration_ms(&mut self, d: SimDuration) {
        self.push(d.as_nanos() as f64 / 1e6);
    }

    /// Fold another collector's samples in (population aggregation across
    /// per-UE collectors).
    pub fn extend(&mut self, other: &Samples) {
        for &v in other.values() {
            self.push(v);
        }
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            f64::NAN
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Linear interpolation between order statistics of a sorted slice.
    fn interpolate(sorted: &[f64], q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// `q`-quantile in \[0,1\] without mutating the observable collector:
    /// reads the samples directly when they are already sorted, otherwise
    /// sorts a copy once and caches it until the next push. Repeated
    /// read-only queries between pushes (the reporting pattern: p50, p95,
    /// p99, min, max off the same collector) therefore sort once, not once
    /// per query.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        if self.sorted {
            return Self::interpolate(&self.values, q);
        }
        let sorted = self.sorted_view.get_or_init(|| {
            let mut v = self.values.clone();
            v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            v
        });
        Self::interpolate(sorted, q)
    }

    /// `q`-quantile in \[0,1\], sorting in place once so repeated queries are
    /// O(1) after the first.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        if !self.sorted {
            self.values
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
            // The stored order now serves queries directly.
            self.sorted_view.take();
        }
        Self::interpolate(&self.values, q)
    }

    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    pub fn min(&self) -> f64 {
        self.percentile(0.0)
    }

    pub fn max(&self) -> f64 {
        self.percentile(1.0)
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// Fixed-width histogram over a closed range; out-of-range values land in
/// saturating edge bins so nothing is silently dropped.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0);
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            count: 0,
        }
    }

    pub fn push(&mut self, x: f64) {
        let nbins = self.bins.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            nbins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * nbins as f64) as usize
        };
        self.bins[idx.min(nbins - 1)] += 1;
        self.count += 1;
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Center of bin `i` (for plotting).
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

/// Counts bytes over time and reports average throughput.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ThroughputMeter {
    bytes: u64,
    first: Option<SimTime>,
    last: Option<SimTime>,
}

impl ThroughputMeter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.bytes += bytes;
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.last = Some(now);
    }

    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Mean throughput in bits/s over an explicit observation window.
    pub fn bps_over(&self, window: SimDuration) -> f64 {
        if window.is_zero() {
            return 0.0;
        }
        (self.bytes as f64 * 8.0) / window.as_secs_f64()
    }

    /// Mean throughput in bits/s between the first and last recorded sample.
    /// Returns 0 with fewer than two samples.
    pub fn bps(&self) -> f64 {
        match (self.first, self.last) {
            (Some(a), Some(b)) if b > a => self.bps_over(b - a),
            _ => 0.0,
        }
    }
}

/// Jain's fairness index over per-entity allocations.
///
/// Equals 1.0 when all allocations are equal, 1/n when one entity gets
/// everything. Empty or all-zero input yields 1.0 (degenerate but fair).
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sq_sum: f64 = allocations.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    (sum * sum) / (allocations.len() as f64 * sq_sum)
}

/// Exponentially weighted moving average.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` is the weight of the newest sample (0 < alpha <= 1).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ewma { alpha, value: None }
    }

    pub fn push(&mut self, x: f64) {
        self.value = Some(match self.value {
            Some(v) => v + self.alpha * (x - v),
            None => x,
        });
    }

    pub fn get(&self) -> Option<f64> {
        self.value
    }

    pub fn get_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// A time series of (time, value) points with trapezoidal time-average.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a point; time must be non-decreasing (debug-asserted).
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(t >= last, "TimeSeries points must be time-ordered");
        }
        self.points.push((t, v));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Time-weighted average treating the series as a step function (each
    /// value holds until the next point). Returns NaN with < 2 points.
    pub fn step_average(&self) -> f64 {
        if self.points.len() < 2 {
            return f64::NAN;
        }
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0).as_secs_f64();
            area += w[0].1 * dt;
        }
        let span = (self.points[self.points.len() - 1].0 - self.points[0].0).as_secs_f64();
        if span == 0.0 {
            f64::NAN
        } else {
            area / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((w.mean() - mean).abs() < 1e-9);
        assert!((w.variance() - var).abs() < 1e-9);
        assert_eq!(w.min(), 1.0);
        assert_eq!(w.max(), 100.0);
        assert_eq!(w.count(), 6);
    }

    #[test]
    fn welford_merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        // Merging into empty copies the source.
        let mut e = Welford::new();
        e.merge(&all);
        assert_eq!(e.count(), all.count());
    }

    #[test]
    fn empty_collectors_return_nan_not_panic() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
        let s = Samples::new();
        assert!(s.mean().is_nan());
        assert!(s.median().is_nan());
    }

    #[test]
    fn quantiles_interpolate() {
        let mut s = Samples::new();
        for x in [4.0, 1.0, 3.0, 2.0] {
            s.push(x);
        }
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 4.0);
        assert!((s.median() - 2.5).abs() < 1e-12);
        // Quantile clamps out-of-range q.
        assert_eq!(s.quantile(2.0), 4.0);
    }

    #[test]
    fn percentile_is_immutable_and_matches_quantile() {
        let mut s = Samples::new();
        for x in [4.0, 1.0, 3.0, 2.0] {
            s.push(x);
        }
        // Read-only query on an unsorted collector...
        let p = s.percentile(0.5);
        // ...leaves the stored sample order untouched.
        assert_eq!(s.values(), &[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(p, s.quantile(0.5), "copy-on-query matches in-place sort");
        // After the cached sort, percentile reads the cache directly.
        assert_eq!(s.percentile(1.0), 4.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!(Samples::new().percentile(0.5).is_nan());
    }

    #[test]
    fn percentile_cache_survives_interleaved_pushes() {
        let mut s = Samples::new();
        // Interleave pushes with read-only queries: every query after a push
        // must see the new sample (the cached view must not go stale).
        let mut reference = Vec::new();
        for (i, x) in [5.0, 1.0, 9.0, 3.0, 7.0, 2.0].into_iter().enumerate() {
            s.push(x);
            reference.push(x);
            let mut sorted = reference.clone();
            sorted.sort_by(|a: &f64, b: &f64| a.partial_cmp(b).unwrap());
            assert_eq!(s.min(), sorted[0], "after push {i}");
            assert_eq!(s.max(), *sorted.last().unwrap(), "after push {i}");
            // Repeated queries between pushes hit the cached view and agree.
            assert_eq!(s.percentile(0.5), s.percentile(0.5));
        }
        // Stored order is untouched by all those read-only queries.
        assert_eq!(s.values(), &[5.0, 1.0, 9.0, 3.0, 7.0, 2.0]);
        // Round-trip drops the cache but preserves samples and order.
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            !json.contains("sorted_view"),
            "cache must not serialize: {json}"
        );
        let back: Samples = serde_json::from_str(&json).unwrap();
        assert_eq!(back.values(), s.values());
        assert_eq!(back.median(), s.median());
    }

    #[test]
    fn percentiles_agree_with_naive_sort_after_cross_thread_moves() {
        // The cache must be Send/Sync (per-shard stats cross the worker
        // boundary of the sharded engine) and queries must agree with a
        // naive sort whether the cache was populated before or after the
        // move, and on clones that carried it across.
        fn naive(vals: &[f64], q: f64) -> f64 {
            let mut v = vals.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            Samples::interpolate(&v, q)
        }
        let raw = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0];
        let mut s = Samples::new();
        for x in raw {
            s.push(x);
        }
        // Warm the cache on this thread, then move the collector.
        let _ = s.percentile(0.5);
        let shared = std::sync::Arc::new(s);
        let for_thread = std::sync::Arc::clone(&shared);
        let from_thread = std::thread::spawn(move || {
            // Query through the shared reference on another thread (Sync)...
            let warm = (for_thread.median(), for_thread.p95());
            // ...and move a clone (with its warmed cache) into this thread.
            let owned: Samples = (*for_thread).clone();
            let mut grown = owned.clone();
            grown.push(4.0);
            (warm, owned.percentile(0.25), grown.median())
        })
        .join()
        .unwrap();
        let ((med, p95), p25, grown_med) = from_thread;
        assert_eq!(med, naive(&raw, 0.5));
        assert_eq!(p95, naive(&raw, 0.95));
        assert_eq!(p25, naive(&raw, 0.25));
        let mut raw_plus = raw.to_vec();
        raw_plus.push(4.0);
        assert_eq!(grown_med, naive(&raw_plus, 0.5), "push invalidates cache");
        // The original, back on this thread, still answers correctly.
        assert_eq!(shared.median(), naive(&raw, 0.5));
    }

    #[test]
    fn histogram_edges_saturate() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-5.0);
        h.push(15.0);
        h.push(5.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.bins()[5], 1);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jain_known_values() {
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        // 2:1 split of two users → (3)^2 / (2*5) = 0.9
        assert!((jain_index(&[2.0, 1.0]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn throughput_meter() {
        let mut m = ThroughputMeter::new();
        assert_eq!(m.bps(), 0.0);
        m.record(SimTime::from_secs(0), 1000);
        assert_eq!(m.bps(), 0.0, "single sample has no window");
        m.record(SimTime::from_secs(1), 1000);
        // 2000 bytes over 1 s = 16 kbit/s
        assert!((m.bps() - 16_000.0).abs() < 1e-9);
        assert!((m.bps_over(SimDuration::from_secs(2)) - 8_000.0).abs() < 1e-9);
        assert_eq!(m.total_bytes(), 2000);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.get(), None);
        assert_eq!(e.get_or(7.0), 7.0);
        e.push(10.0);
        assert_eq!(e.get(), Some(10.0));
        for _ in 0..50 {
            e.push(0.0);
        }
        assert!(e.get().unwrap() < 1e-9);
    }

    #[test]
    fn time_series_step_average() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(0), 10.0);
        ts.push(SimTime::from_secs(1), 20.0);
        ts.push(SimTime::from_secs(3), 0.0);
        // 10 for 1s + 20 for 2s over 3s = 50/3
        assert!((ts.step_average() - 50.0 / 3.0).abs() < 1e-9);
        let empty = TimeSeries::new();
        assert!(empty.step_average().is_nan());
    }
}
