//! Simulated time.
//!
//! Time is a `u64` count of nanoseconds since simulation start. Nanosecond
//! resolution comfortably covers everything the dLTE models need: LTE
//! subframes are 1 ms, WiFi slots are 9 µs, and propagation delays on rural
//! links are single-digit microseconds. A `u64` of nanoseconds wraps after
//! ~584 years of simulated time, far beyond any experiment here.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

pub const NANOS_PER_MICRO: u64 = 1_000;
pub const NANOS_PER_MILLI: u64 = 1_000_000;
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "inactive timer" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * NANOS_PER_MICRO)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * NANOS_PER_MILLI)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond).
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "SimTime cannot be negative");
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is
    /// later than `self` (never panics — convenient for latency bookkeeping
    /// around reordered events).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds (rounds to nearest nanosecond;
    /// negative inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * NANOS_PER_SEC as f64).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub const fn as_micros(self) -> u64 {
        self.0 / NANOS_PER_MICRO
    }

    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a float factor (clamped to non-negative, rounded).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; saturates in release.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_nanos(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_nanos(self.0))
    }
}

/// Human-readable rendering with an auto-selected unit.
fn format_nanos(ns: u64) -> String {
    if ns >= NANOS_PER_SEC {
        format!("{:.3}s", ns as f64 / NANOS_PER_SEC as f64)
    } else if ns >= NANOS_PER_MILLI {
        format!("{:.3}ms", ns as f64 / NANOS_PER_MILLI as f64)
    } else if ns >= NANOS_PER_MICRO {
        format!("{:.3}us", ns as f64 / NANOS_PER_MICRO as f64)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn float_seconds_round() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_millis(), 1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        // Negative durations clamp to zero.
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        assert_eq!(
            SimDuration::from_millis(4) * 3,
            SimDuration::from_millis(12)
        );
        assert_eq!(
            SimDuration::from_millis(12) / 4,
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(late.saturating_since(early).as_millis(), 1);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn mul_f64_rounds_and_clamps() {
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(1.5),
            SimDuration::from_millis(15)
        );
        assert_eq!(
            SimDuration::from_millis(10).mul_f64(-1.0),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
        assert!(SimDuration::from_micros(999) < SimDuration::from_millis(1));
    }
}
