//! Property-based tests for the simulation engine's core invariants.

use dlte_sim::stats::{jain_index, Samples, Welford};
use dlte_sim::{EventQueue, SimDuration, SimTime, Simulation, World};
use proptest::prelude::*;

/// A world that just records firing times.
struct Sink {
    fired: Vec<SimTime>,
}

impl World for Sink {
    type Event = ();
    fn handle(&mut self, now: SimTime, _: (), _q: &mut EventQueue<()>) {
        self.fired.push(now);
    }
}

/// One phase of the slab-queue equivalence test: schedule a batch, cancel
/// some keys (live, already-fired, or already-canceled — all must be safe),
/// then advance the clock.
#[derive(Clone, Debug)]
struct Phase {
    /// Schedule offsets from the phase base, in nanoseconds.
    schedule: Vec<u64>,
    /// Indices (mod keys-so-far) of keys to cancel after scheduling.
    cancel: Vec<usize>,
    /// How far past the base this phase's run_until horizon reaches.
    advance: u64,
    /// Attempt a slab reclaim after this phase's run (a no-op unless the
    /// queue happens to be fully drained — both paths must be transparent).
    reclaim: bool,
}

fn arb_phase() -> impl Strategy<Value = Phase> {
    (
        prop::collection::vec(0u64..50_000, 0..20),
        prop::collection::vec(0usize..1000, 0..10),
        1u64..60_000,
        any::<bool>(),
    )
        .prop_map(|(schedule, cancel, advance, reclaim)| Phase {
            schedule,
            cancel,
            advance,
            reclaim,
        })
}

/// Reference model of one scheduled event.
#[derive(Clone, Debug)]
struct ModelEntry {
    at: SimTime,
    id: u32,
    canceled: bool,
    fired: bool,
}

/// World that records (time, id) of every dispatched event.
struct Recorder {
    fired: Vec<(SimTime, u32)>,
}

impl World for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, id: u32, _q: &mut EventQueue<u32>) {
        self.fired.push((now, id));
    }
}

proptest! {
    /// The slab-indexed queue agrees exactly — dispatch order, times, and
    /// pending counts — with a naive reference model (a flat list stably
    /// ordered by (time, schedule sequence)) across arbitrary interleavings
    /// of scheduling, cancellation, and horizon advances. Cancels may target
    /// keys that already fired or were already canceled; both must be no-ops
    /// even after the underlying slot has been reused.
    #[test]
    fn slab_queue_matches_reference_model(phases in prop::collection::vec(arb_phase(), 1..8)) {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        let mut keys = Vec::new();
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut base = 0u64;
        for phase in &phases {
            for &off in &phase.schedule {
                let at = SimTime::from_nanos(base + off);
                let id = model.len() as u32;
                keys.push(sim.queue_mut().schedule_at(at, id));
                model.push(ModelEntry { at, id, canceled: false, fired: false });
            }
            for &pick in &phase.cancel {
                if keys.is_empty() {
                    continue;
                }
                let i = pick % keys.len();
                sim.queue_mut().cancel(keys[i]);
                // The model only retires live entries: canceling a fired or
                // already-canceled key must change nothing.
                let e = &mut model[i];
                if !e.fired && !e.canceled {
                    e.canceled = true;
                }
            }
            // Peek agrees with the model's next live entry before running.
            let next_live = model
                .iter()
                .filter(|e| !e.fired && !e.canceled)
                .map(|e| e.at)
                .min();
            prop_assert_eq!(sim.queue_mut().peek_time(), next_live);

            let horizon = SimTime::from_nanos(base + phase.advance);
            sim.run_until(horizon, 100_000);
            // Entries are ordered by (at, seq) and seq is insertion order,
            // so a stable in-order scan marks exactly what must have fired.
            for e in model.iter_mut() {
                if !e.canceled && !e.fired && e.at <= horizon {
                    e.fired = true;
                }
            }
            let live = model.iter().filter(|e| !e.fired && !e.canceled).count();
            prop_assert_eq!(sim.queue_mut().pending(), live, "pending after phase");
            prop_assert_eq!(sim.queue_mut().is_empty(), live == 0);
            if phase.reclaim {
                // Reclamation at a drain boundary must be invisible to
                // everything this test checks: later schedules, cancels via
                // (possibly stale) keys, and the final dispatch order.
                let before = sim.queue_mut().slot_capacity();
                sim.queue_mut().reclaim();
                if live == 0 && before >= dlte_sim::engine::RECLAIM_MIN_SLOTS {
                    prop_assert_eq!(sim.queue_mut().slot_capacity(), 0);
                }
            }
            base += phase.advance;
        }
        sim.run_to_completion(100_000);
        for e in model.iter_mut() {
            if !e.canceled {
                e.fired = true;
            }
        }
        // Exact dispatch order: the model sorted stably by time (sequence
        // breaks ties via the stable sort) must match what actually fired.
        let mut expect: Vec<(SimTime, u32)> = model
            .iter()
            .filter(|e| e.fired)
            .map(|e| (e.at, e.id))
            .collect();
        expect.sort_by_key(|&(at, _)| at);
        prop_assert_eq!(&sim.world().fired, &expect);
        prop_assert!(sim.queue_mut().is_empty());
        prop_assert_eq!(sim.queue_mut().pending(), 0);
    }

    /// Cancels that land on already-purged orphan slots are exact no-ops.
    ///
    /// The lazy-purge design leaves a canceled event's heap key behind until
    /// it surfaces; `peek_time` discards such orphans eagerly and the freed
    /// slot is then reused by the next schedule. This drives that exact
    /// sequence — cancel, purge via peek, reuse, then *re-cancel the stale
    /// key* — and checks the reused slot's new occupant is never harmed:
    /// `pending()` and the full dispatch order still match the reference
    /// model.
    #[test]
    fn cancels_on_purged_orphan_slots_are_noops(
        phases in prop::collection::vec(
            (
                prop::collection::vec(0u64..50_000, 1..12), // schedule
                prop::collection::vec(0usize..1000, 0..8),  // cancel, purge, re-cancel
                prop::collection::vec(0u64..50_000, 0..12), // reschedule into freed slots
                prop::collection::vec(0usize..1000, 0..8),  // stale cancels after reuse
                1u64..60_000,                               // advance
            ),
            1..8,
        )
    ) {
        let mut sim = Simulation::new(Recorder { fired: vec![] });
        let mut keys = Vec::new();
        let mut model: Vec<ModelEntry> = Vec::new();
        let mut base = 0u64;
        let schedule = |sim: &mut Simulation<Recorder>,
                            keys: &mut Vec<dlte_sim::engine::EventKey>,
                            model: &mut Vec<ModelEntry>,
                            at: SimTime| {
            let id = model.len() as u32;
            keys.push(sim.queue_mut().schedule_at(at, id));
            model.push(ModelEntry { at, id, canceled: false, fired: false });
        };
        let cancel = |sim: &mut Simulation<Recorder>,
                      keys: &[dlte_sim::engine::EventKey],
                      model: &mut [ModelEntry],
                      pick: usize| {
            if keys.is_empty() {
                return;
            }
            let i = pick % keys.len();
            sim.queue_mut().cancel(keys[i]);
            let e = &mut model[i];
            if !e.fired && !e.canceled {
                e.canceled = true;
            }
        };
        for (sched, cancels, resched, stale, advance) in &phases {
            for &off in sched {
                schedule(&mut sim, &mut keys, &mut model, SimTime::from_nanos(base + off));
            }
            for &pick in cancels {
                cancel(&mut sim, &keys, &mut model, pick);
            }
            // Purge: orphan keys at the heap top are discarded here, so the
            // canceled events' slots are ready for reuse with nothing but
            // the guard number protecting them.
            let next_live = model
                .iter()
                .filter(|e| !e.fired && !e.canceled)
                .map(|e| e.at)
                .min();
            prop_assert_eq!(sim.queue_mut().peek_time(), next_live);
            // Reuse the freed slots...
            for &off in resched {
                schedule(&mut sim, &mut keys, &mut model, SimTime::from_nanos(base + off));
            }
            // ...then fire cancels at arbitrary (often stale) keys, and
            // repeat every earlier cancel verbatim: both must leave the
            // slots' new occupants untouched.
            for &pick in stale {
                cancel(&mut sim, &keys, &mut model, pick);
            }
            for &pick in cancels {
                cancel(&mut sim, &keys, &mut model, pick);
            }
            let horizon = SimTime::from_nanos(base + advance);
            sim.run_until(horizon, 100_000);
            for e in model.iter_mut() {
                if !e.canceled && !e.fired && e.at <= horizon {
                    e.fired = true;
                }
            }
            let live = model.iter().filter(|e| !e.fired && !e.canceled).count();
            prop_assert_eq!(sim.queue_mut().pending(), live, "pending after phase");
            base += advance;
        }
        sim.run_to_completion(100_000);
        let mut expect: Vec<(SimTime, u32)> = model
            .iter()
            .filter(|e| !e.canceled)
            .map(|e| (e.at, e.id))
            .collect();
        expect.sort_by_key(|&(at, _)| at);
        prop_assert_eq!(&sim.world().fired, &expect);
        prop_assert!(sim.queue_mut().is_empty());
    }

    /// Events always fire in non-decreasing time order, whatever order they
    /// were scheduled in.
    #[test]
    fn events_fire_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(Sink { fired: vec![] });
        for &t in &times {
            sim.queue_mut().schedule_at(SimTime::from_nanos(t), ());
        }
        sim.run_to_completion(10_000);
        let fired = &sim.world().fired;
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// The horizon never lets an event fire strictly after it.
    #[test]
    fn horizon_is_respected(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        horizon in 0u64..1_000_000,
    ) {
        let mut sim = Simulation::new(Sink { fired: vec![] });
        for &t in &times {
            sim.queue_mut().schedule_at(SimTime::from_nanos(t), ());
        }
        sim.run_until(SimTime::from_nanos(horizon), 10_000);
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(sim.world().fired.len(), expected);
    }

    /// Canceled events never fire; everything else does.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..100_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulation::new(Sink { fired: vec![] });
        let mut keys = vec![];
        for &t in &times {
            keys.push(sim.queue_mut().schedule_at(SimTime::from_nanos(t), ()));
        }
        let mut live = 0;
        for (i, key) in keys.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                sim.queue_mut().cancel(*key);
            } else {
                live += 1;
            }
        }
        sim.run_to_completion(10_000);
        prop_assert_eq!(sim.world().fired.len(), live);
    }

    /// SimTime round trips through seconds with sub-microsecond error.
    #[test]
    fn time_float_round_trip(s in 0.0f64..1.0e6) {
        let t = SimTime::from_secs_f64(s);
        prop_assert!((t.as_secs_f64() - s).abs() < 1e-6);
    }

    /// Duration arithmetic is consistent: (a + b) - b == a.
    #[test]
    fn duration_add_sub(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db) - db, da);
    }

    /// Welford mean/variance match naive computation on arbitrary data.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1.0e4f64..1.0e4, 1..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    /// Jain's index is always within [1/n, 1].
    #[test]
    fn jain_bounds(xs in prop::collection::vec(0.0f64..1.0e6, 1..100)) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        prop_assert!(j <= 1.0 + 1e-12);
        prop_assert!(j >= 1.0 / n - 1e-12);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(-1.0e5f64..1.0e5, 2..300)) {
        let mut s = Samples::new();
        for &x in &xs {
            s.push(x);
        }
        let q25 = s.quantile(0.25);
        let q50 = s.quantile(0.50);
        let q75 = s.quantile(0.75);
        prop_assert!(s.min() <= q25 && q25 <= q50 && q50 <= q75 && q75 <= s.max());
    }
}
