//! Property-based tests for the simulation engine's core invariants.

use dlte_sim::stats::{jain_index, Samples, Welford};
use dlte_sim::{EventQueue, SimDuration, SimTime, Simulation, World};
use proptest::prelude::*;

/// A world that just records firing times.
struct Sink {
    fired: Vec<SimTime>,
}

impl World for Sink {
    type Event = ();
    fn handle(&mut self, now: SimTime, _: (), _q: &mut EventQueue<()>) {
        self.fired.push(now);
    }
}

proptest! {
    /// Events always fire in non-decreasing time order, whatever order they
    /// were scheduled in.
    #[test]
    fn events_fire_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim = Simulation::new(Sink { fired: vec![] });
        for &t in &times {
            sim.queue_mut().schedule_at(SimTime::from_nanos(t), ());
        }
        sim.run_to_completion(10_000);
        let fired = &sim.world().fired;
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// The horizon never lets an event fire strictly after it.
    #[test]
    fn horizon_is_respected(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        horizon in 0u64..1_000_000,
    ) {
        let mut sim = Simulation::new(Sink { fired: vec![] });
        for &t in &times {
            sim.queue_mut().schedule_at(SimTime::from_nanos(t), ());
        }
        sim.run_until(SimTime::from_nanos(horizon), 10_000);
        let expected = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(sim.world().fired.len(), expected);
    }

    /// Canceled events never fire; everything else does.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..100_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulation::new(Sink { fired: vec![] });
        let mut keys = vec![];
        for &t in &times {
            keys.push(sim.queue_mut().schedule_at(SimTime::from_nanos(t), ()));
        }
        let mut live = 0;
        for (i, key) in keys.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                sim.queue_mut().cancel(*key);
            } else {
                live += 1;
            }
        }
        sim.run_to_completion(10_000);
        prop_assert_eq!(sim.world().fired.len(), live);
    }

    /// SimTime round trips through seconds with sub-microsecond error.
    #[test]
    fn time_float_round_trip(s in 0.0f64..1.0e6) {
        let t = SimTime::from_secs_f64(s);
        prop_assert!((t.as_secs_f64() - s).abs() < 1e-6);
    }

    /// Duration arithmetic is consistent: (a + b) - b == a.
    #[test]
    fn duration_add_sub(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db) - db, da);
    }

    /// Welford mean/variance match naive computation on arbitrary data.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1.0e4f64..1.0e4, 1..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
    }

    /// Jain's index is always within [1/n, 1].
    #[test]
    fn jain_bounds(xs in prop::collection::vec(0.0f64..1.0e6, 1..100)) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        prop_assert!(j <= 1.0 + 1e-12);
        prop_assert!(j >= 1.0 / n - 1e-12);
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_monotone(xs in prop::collection::vec(-1.0e5f64..1.0e5, 2..300)) {
        let mut s = Samples::new();
        for &x in &xs {
            s.push(x);
        }
        let q25 = s.quantile(0.25);
        let q50 = s.quantile(0.50);
        let q75 = s.quantile(0.75);
        prop_assert!(s.min() <= q25 && q25 <= q50 && q50 <= q75 && q75 <= s.max());
    }
}
