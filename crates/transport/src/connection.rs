//! Client and server connection state machines.
//!
//! Pure machines: frames in, frames out, no I/O — the [`crate::handlers`]
//! adapters bind them to the packet substrate. Reliability is
//! retransmission with an RFC-6298 RTO over a fixed window; lost chunks are
//! re-sent under fresh packet numbers (QUIC-style, no retransmission
//! ambiguity). See the crate docs for the deliberate omissions.

use crate::fec::{recoverable, FecEncoder};
use crate::frames::{Chunk, Cid, Frame, PacketNum, ResumeToken};
use crate::rtt::RttEstimator;
use crate::streams::Receiver;
use dlte_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Transport feature configuration — the E12 ablation axes.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Resume with 0-RTT using a cached token.
    pub zero_rtt: bool,
    /// Survive address changes on the same connection ID.
    pub migration: bool,
    /// FEC group size (0 = off).
    pub fec_k: u32,
    /// Single global delivery order (TCP semantics) instead of independent
    /// streams.
    pub legacy_ordering: bool,
    /// Max data packets in flight.
    pub window: u32,
    /// Payload bytes per data packet.
    pub chunk_bytes: u32,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            zero_rtt: true,
            migration: true,
            fec_k: 0,
            legacy_ordering: false,
            window: 32,
            chunk_bytes: 1200,
        }
    }
}

impl TransportConfig {
    /// The modern profile (all §4.2 features on, FEC in groups of 8).
    pub fn modern() -> Self {
        TransportConfig {
            fec_k: 8,
            ..Default::default()
        }
    }

    /// The legacy TCP-like baseline: 4-tuple-bound, 1-RTT only, global
    /// ordering, no FEC.
    pub fn legacy() -> Self {
        TransportConfig {
            zero_rtt: false,
            migration: false,
            fec_k: 0,
            legacy_ordering: true,
            ..Default::default()
        }
    }
}

/// Events surfaced to the embedding application.
#[derive(Clone, Debug, PartialEq)]
pub enum ConnEvent {
    /// Handshake completed (client side). `zero_rtt` = data rode the first
    /// flight.
    Connected { zero_rtt: bool },
    /// Server issued a resumption token (cache it for next time).
    TokenIssued(ResumeToken),
    /// Receiver delivered in-order bytes to the application.
    Delivered { stream: u64, newly: u64 },
    /// All queued data has been acknowledged (client side).
    AllAcked { bytes: u64 },
    /// FEC repaired a lost packet without retransmission.
    FecRecovered { pn: PacketNum },
    /// Connection migrated to a new path.
    Migrated,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ClientState {
    Idle,
    Handshaking,
    Established,
}

struct InFlight {
    chunk: Chunk,
    global_offset: u64,
    sent_at: SimTime,
    retransmission: bool,
}

/// Client side.
pub struct ClientConn {
    pub cfg: TransportConfig,
    cid: Cid,
    state: ClientState,
    next_pn: PacketNum,
    to_send: VecDeque<(Chunk, u64)>,
    unacked: BTreeMap<PacketNum, InFlight>,
    stream_offsets: HashMap<u64, u64>,
    global_offset: u64,
    queued_bytes: u64,
    acked_bytes: u64,
    all_acked_reported: bool,
    rtt: RttEstimator,
    fec: FecEncoder,
    hello_sent_at: Option<SimTime>,
    out: Vec<Frame>,
    events: Vec<ConnEvent>,
    /// Stats.
    pub retransmissions: u64,
    pub handshakes: u64,
    pub zero_rtt_attempts: u64,
}

impl ClientConn {
    pub fn new(cid: Cid, cfg: TransportConfig) -> Self {
        ClientConn {
            cfg,
            cid,
            state: ClientState::Idle,
            next_pn: 0,
            to_send: VecDeque::new(),
            unacked: BTreeMap::new(),
            stream_offsets: HashMap::new(),
            global_offset: 0,
            queued_bytes: 0,
            acked_bytes: 0,
            all_acked_reported: false,
            rtt: RttEstimator::new(),
            fec: FecEncoder::new(cfg.fec_k),
            hello_sent_at: None,
            out: Vec::new(),
            events: Vec::new(),
            retransmissions: 0,
            handshakes: 0,
            zero_rtt_attempts: 0,
        }
    }

    pub fn cid(&self) -> Cid {
        self.cid
    }

    pub fn is_established(&self) -> bool {
        self.state == ClientState::Established
    }

    pub fn acked_bytes(&self) -> u64 {
        self.acked_bytes
    }

    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    pub fn srtt(&self) -> Option<SimDuration> {
        self.rtt.srtt()
    }

    /// Queue `bytes` on `stream` (split into chunks; `fin` marks the end of
    /// the stream). Legacy ordering forces everything onto stream 0, like
    /// one TCP bytestream.
    pub fn queue(&mut self, stream: u64, bytes: u64, fin: bool) {
        let stream = if self.cfg.legacy_ordering { 0 } else { stream };
        let mut remaining = bytes;
        while remaining > 0 {
            let len = remaining.min(self.cfg.chunk_bytes as u64) as u32;
            remaining -= len as u64;
            let offset = self.stream_offsets.entry(stream).or_insert(0);
            let chunk = Chunk {
                stream,
                offset: *offset,
                len,
                fin: fin && remaining == 0,
            };
            *offset += len as u64;
            let g = self.global_offset;
            self.global_offset += len as u64;
            self.to_send.push_back((chunk, g));
            self.queued_bytes += len as u64;
        }
        self.all_acked_reported = false;
    }

    /// Start (or restart) the handshake. With a token and 0-RTT enabled,
    /// the first flight carries early data.
    pub fn connect(&mut self, now: SimTime, token: Option<ResumeToken>) {
        self.state = ClientState::Handshaking;
        self.handshakes += 1;
        self.hello_sent_at = Some(now);
        let early = if self.cfg.zero_rtt && token.is_some() {
            self.zero_rtt_attempts += 1;
            self.build_flight(now, true)
        } else {
            Vec::new()
        };
        self.out.push(Frame::ClientHello {
            cid: self.cid,
            token,
            early,
        });
    }

    /// The adapter calls this when the local address changed.
    ///
    /// With migration the connection survives: in-flight data is assumed
    /// lost on the old path and is queued for immediate retransmission.
    /// Without it the connection is dead: a fresh CID and handshake are
    /// required (the adapter follows up with [`ClientConn::connect`]).
    pub fn on_address_change(&mut self, now: SimTime) {
        self.requeue_unacked();
        match (self.cfg.migration, self.state) {
            (true, ClientState::Established) => {
                self.events.push(ConnEvent::Migrated);
                self.fill_window(now);
            }
            _ => {
                // New connection needed.
                self.cid += 1;
                self.state = ClientState::Idle;
            }
        }
    }

    fn requeue_unacked(&mut self) {
        // Preserve send order: unacked (oldest first) go to the front.
        let mut unacked: Vec<(PacketNum, InFlight)> =
            std::mem::take(&mut self.unacked).into_iter().collect();
        unacked.reverse();
        for (_, inf) in unacked {
            self.to_send.push_front((inf.chunk, inf.global_offset));
        }
    }

    fn build_flight(&mut self, now: SimTime, early: bool) -> Vec<(PacketNum, Chunk)> {
        let mut flight = Vec::new();
        while (self.unacked.len() as u32) < self.cfg.window {
            let Some((chunk, g)) = self.to_send.pop_front() else {
                break;
            };
            let pn = self.next_pn;
            self.next_pn += 1;
            self.unacked.insert(
                pn,
                InFlight {
                    chunk,
                    global_offset: g,
                    sent_at: now,
                    retransmission: false,
                },
            );
            if early {
                flight.push((pn, chunk));
            } else {
                self.out.push(Frame::Data {
                    cid: self.cid,
                    pn,
                    chunk,
                });
            }
            if let Some(covers) = self.fec.on_data(pn) {
                let covered: Vec<(PacketNum, Chunk)> = covers
                    .iter()
                    .map(|p| (*p, self.cover_chunk(*p, pn, chunk)))
                    .collect();
                self.out.push(Frame::Parity {
                    cid: self.cid,
                    covers: covered,
                });
            }
        }
        flight
    }

    /// Look up the chunk a cover refers to (it is either still unacked or
    /// the one just sent).
    fn cover_chunk(&self, pn: PacketNum, just_sent_pn: PacketNum, just_sent: Chunk) -> Chunk {
        if pn == just_sent_pn {
            just_sent
        } else {
            self.unacked.get(&pn).map(|i| i.chunk).unwrap_or(just_sent)
        }
    }

    fn fill_window(&mut self, now: SimTime) {
        if self.state == ClientState::Established {
            self.build_flight(now, false);
        }
    }

    /// Feed an incoming frame.
    pub fn on_frame(&mut self, now: SimTime, frame: &Frame) {
        if frame.cid() != self.cid {
            return;
        }
        match frame {
            Frame::ServerHello {
                token,
                early_accepted,
                ..
            } => {
                if self.state != ClientState::Handshaking {
                    return;
                }
                self.state = ClientState::Established;
                if let Some(sent) = self.hello_sent_at.take() {
                    self.rtt.sample(now.saturating_since(sent));
                }
                self.events.push(ConnEvent::TokenIssued(*token));
                let zero_rtt = !self.unacked.is_empty();
                if !early_accepted && zero_rtt {
                    // 0-RTT rejected: resend as 1-RTT data.
                    self.requeue_unacked();
                }
                self.events.push(ConnEvent::Connected {
                    zero_rtt: zero_rtt && *early_accepted,
                });
                self.fill_window(now);
            }
            Frame::Ack { ranges, .. } => {
                let acked: Vec<PacketNum> = self
                    .unacked
                    .keys()
                    .copied()
                    .filter(|pn| ranges.iter().any(|&(lo, hi)| (lo..=hi).contains(pn)))
                    .collect();
                for pn in acked {
                    let inf = self.unacked.remove(&pn).expect("listed key");
                    self.acked_bytes += inf.chunk.len as u64;
                    if !inf.retransmission {
                        self.rtt.sample(now.saturating_since(inf.sent_at));
                    }
                }
                if self.unacked.is_empty()
                    && self.to_send.is_empty()
                    && self.queued_bytes > 0
                    && !self.all_acked_reported
                {
                    self.all_acked_reported = true;
                    self.events.push(ConnEvent::AllAcked {
                        bytes: self.acked_bytes,
                    });
                }
                self.fill_window(now);
            }
            Frame::PathChallenge { nonce, .. } => {
                self.out.push(Frame::PathResponse {
                    cid: self.cid,
                    nonce: *nonce,
                });
            }
            _ => {}
        }
    }

    /// Drive timers: handshake and data retransmission.
    pub fn on_tick(&mut self, now: SimTime) {
        match self.state {
            ClientState::Handshaking => {
                if let Some(sent) = self.hello_sent_at {
                    if now.saturating_since(sent) >= self.rtt.rto() {
                        self.rtt.on_timeout();
                        self.retransmissions += 1;
                        // Re-arm and resend the hello (without early data —
                        // conservative, mirrors QUIC's amplification care).
                        self.hello_sent_at = Some(now);
                        self.out.push(Frame::ClientHello {
                            cid: self.cid,
                            token: None,
                            early: Vec::new(),
                        });
                    }
                }
            }
            ClientState::Established => {
                let rto = self.rtt.rto();
                let expired: Vec<PacketNum> = self
                    .unacked
                    .iter()
                    .filter(|(_, inf)| now.saturating_since(inf.sent_at) >= rto)
                    .map(|(&pn, _)| pn)
                    .collect();
                if !expired.is_empty() {
                    self.rtt.on_timeout();
                    for pn in expired {
                        let mut inf = self.unacked.remove(&pn).expect("listed");
                        inf.retransmission = true;
                        self.retransmissions += 1;
                        self.to_send.push_front((inf.chunk, inf.global_offset));
                    }
                    self.fill_window(now);
                }
            }
            ClientState::Idle => {}
        }
    }

    /// Frames ready to transmit.
    pub fn take_output(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.out)
    }

    /// Events for the application.
    pub fn take_events(&mut self) -> Vec<ConnEvent> {
        std::mem::take(&mut self.events)
    }
}

struct ServerSide {
    receiver: Receiver,
    received: BTreeSet<PacketNum>,
    /// Map pn → (chunk, global offset) for FEC recovery bookkeeping.
    chunk_of: BTreeMap<PacketNum, (Chunk, u64)>,
    /// Next expected global offset per stream, for legacy mapping.
    global_in_next: u64,
    global_of_chunk: HashMap<(u64, u64), u64>,
}

impl ServerSide {
    fn new(legacy: bool) -> Self {
        ServerSide {
            receiver: if legacy {
                Receiver::legacy()
            } else {
                Receiver::modern()
            },
            received: BTreeSet::new(),
            chunk_of: BTreeMap::new(),
            global_in_next: 0,
            global_of_chunk: HashMap::new(),
        }
    }

    /// Global offset for a chunk: assigned on first sight in (stream,
    /// offset) order of *arrival declaration* — the client assigns global
    /// offsets in queue order, which we reconstruct deterministically by
    /// first-seen order. For the legacy baseline the client sends a single
    /// stream, so stream offset *is* the global offset.
    fn global_of(&mut self, chunk: &Chunk) -> u64 {
        if chunk.stream == 0 {
            return chunk.offset;
        }
        let key = (chunk.stream, chunk.offset);
        if let Some(&g) = self.global_of_chunk.get(&key) {
            return g;
        }
        let g = self.global_in_next;
        self.global_in_next += chunk.len as u64;
        self.global_of_chunk.insert(key, g);
        g
    }

    fn accept_data(&mut self, pn: PacketNum, chunk: Chunk, events: &mut Vec<ConnEvent>) {
        if self.received.insert(pn) {
            let g = self.global_of(&chunk);
            self.chunk_of.insert(pn, (chunk, g));
            let newly = self.receiver.accept(chunk, g);
            if newly > 0 {
                events.push(ConnEvent::Delivered {
                    stream: chunk.stream,
                    newly,
                });
            }
        }
    }

    fn ack(&self, cid: Cid) -> Frame {
        // Compress the received set into inclusive ranges, most recent
        // first, capped at 32 ranges (older history is stable: anything the
        // client still cares about is recent).
        let mut ranges: Vec<(PacketNum, PacketNum)> = Vec::new();
        for &pn in self.received.iter().rev() {
            match ranges.last_mut() {
                Some((lo, _)) if *lo == pn + 1 => *lo = pn,
                _ => {
                    if ranges.len() >= 32 {
                        break;
                    }
                    ranges.push((pn, pn));
                }
            }
        }
        Frame::Ack { cid, ranges }
    }
}

/// Server side (accepts many connections).
pub struct ServerConn {
    pub server_id: u64,
    cfg: TransportConfig,
    conns: HashMap<Cid, ServerSide>,
    valid_tokens: BTreeSet<u64>,
    next_token: u64,
    out: Vec<Frame>,
    events: Vec<ConnEvent>,
    /// Stats.
    pub zero_rtt_accepted: u64,
    pub zero_rtt_rejected: u64,
    pub fec_recoveries: u64,
}

impl ServerConn {
    pub fn new(server_id: u64, cfg: TransportConfig) -> Self {
        ServerConn {
            server_id,
            cfg,
            conns: HashMap::new(),
            valid_tokens: BTreeSet::new(),
            next_token: 1,
            out: Vec::new(),
            events: Vec::new(),
            zero_rtt_accepted: 0,
            zero_rtt_rejected: 0,
            fec_recoveries: 0,
        }
    }

    /// Total in-order bytes delivered on a connection.
    pub fn delivered(&self, cid: Cid) -> u64 {
        self.conns
            .get(&cid)
            .map_or(0, |c| c.receiver.total_delivered())
    }

    pub fn on_frame(&mut self, _now: SimTime, frame: &Frame) {
        match frame {
            Frame::ClientHello { cid, token, early } => {
                let token_ok = matches!(token, Some(t) if t.server_id == self.server_id
                        && self.valid_tokens.contains(&t.value));
                let conn = self
                    .conns
                    .entry(*cid)
                    .or_insert_with(|| ServerSide::new(self.cfg.legacy_ordering));
                let early_accepted = token_ok && !early.is_empty();
                if early_accepted {
                    self.zero_rtt_accepted += 1;
                    for (pn, chunk) in early {
                        conn.accept_data(*pn, *chunk, &mut self.events);
                    }
                } else if !early.is_empty() {
                    self.zero_rtt_rejected += 1;
                }
                let value = self.next_token;
                self.next_token += 1;
                self.valid_tokens.insert(value);
                self.out.push(Frame::ServerHello {
                    cid: *cid,
                    token: ResumeToken {
                        server_id: self.server_id,
                        value,
                    },
                    early_accepted,
                });
                if early_accepted {
                    let ack = conn.ack(*cid);
                    self.out.push(ack);
                }
            }
            Frame::Data { cid, pn, chunk } => {
                if let Some(conn) = self.conns.get_mut(cid) {
                    conn.accept_data(*pn, *chunk, &mut self.events);
                    let ack = conn.ack(*cid);
                    self.out.push(ack);
                }
            }
            Frame::Parity { cid, covers } => {
                if let Some(conn) = self.conns.get_mut(cid) {
                    let pns: Vec<PacketNum> = covers.iter().map(|(pn, _)| *pn).collect();
                    if let Some(missing) = recoverable(&conn.received, &pns) {
                        let chunk = covers
                            .iter()
                            .find(|(pn, _)| *pn == missing)
                            .map(|(_, c)| *c)
                            .expect("cover includes chunk");
                        conn.accept_data(missing, chunk, &mut self.events);
                        self.fec_recoveries += 1;
                        self.events.push(ConnEvent::FecRecovered { pn: missing });
                        let ack = conn.ack(*cid);
                        self.out.push(ack);
                    }
                }
            }
            Frame::PathResponse { .. } => {}
            _ => {}
        }
    }

    pub fn take_output(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.out)
    }

    pub fn take_events(&mut self) -> Vec<ConnEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run client and server against each other over a perfect in-order
    /// zero-latency channel (unit-test harness; lossy/latency behaviour is
    /// exercised through the network adapters in handlers.rs tests).
    fn pump(client: &mut ClientConn, server: &mut ServerConn, now: SimTime) {
        for _ in 0..64 {
            let c_out = client.take_output();
            let s_in: Vec<Frame> = c_out;
            for f in &s_in {
                server.on_frame(now, f);
            }
            let s_out = server.take_output();
            if s_in.is_empty() && s_out.is_empty() {
                break;
            }
            for f in &s_out {
                client.on_frame(now, f);
            }
        }
    }

    #[test]
    fn one_rtt_handshake_and_transfer() {
        let mut c = ClientConn::new(1, TransportConfig::default());
        let mut s = ServerConn::new(77, TransportConfig::default());
        c.queue(1, 10_000, true);
        c.connect(SimTime::ZERO, None);
        pump(&mut c, &mut s, SimTime::from_millis(1));
        assert!(c.is_established());
        assert_eq!(c.acked_bytes(), 10_000);
        assert_eq!(s.delivered(1), 10_000);
        let events = c.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, ConnEvent::Connected { zero_rtt: false })));
        assert!(events
            .iter()
            .any(|e| matches!(e, ConnEvent::AllAcked { bytes: 10_000 })));
    }

    #[test]
    fn zero_rtt_resumption_carries_data_in_first_flight() {
        let cfg = TransportConfig::default();
        // First connection obtains a token.
        let mut c1 = ClientConn::new(1, cfg);
        let mut s = ServerConn::new(77, cfg);
        c1.connect(SimTime::ZERO, None);
        pump(&mut c1, &mut s, SimTime::from_millis(1));
        let token = c1
            .take_events()
            .into_iter()
            .find_map(|e| match e {
                ConnEvent::TokenIssued(t) => Some(t),
                _ => None,
            })
            .expect("token issued");
        // Second connection resumes with 0-RTT data.
        let mut c2 = ClientConn::new(2, cfg);
        c2.queue(1, 2_400, true);
        c2.connect(SimTime::from_secs(1), Some(token));
        // The very first flight already contains the data:
        let first_flight = c2.take_output();
        assert_eq!(first_flight.len(), 1);
        match &first_flight[0] {
            Frame::ClientHello { early, token, .. } => {
                assert!(token.is_some());
                assert_eq!(early.len(), 2, "two chunks of early data");
            }
            other => panic!("{other:?}"),
        }
        for f in &first_flight {
            s.on_frame(SimTime::from_secs(1), f);
        }
        assert_eq!(s.delivered(2), 2_400, "0-RTT data delivered pre-handshake");
        assert_eq!(s.zero_rtt_accepted, 1);
        // Finish the handshake.
        for f in s.take_output() {
            c2.on_frame(SimTime::from_secs(1), &f);
        }
        assert!(c2
            .take_events()
            .iter()
            .any(|e| matches!(e, ConnEvent::Connected { zero_rtt: true })));
    }

    #[test]
    fn bogus_token_early_data_rejected_then_resent() {
        let cfg = TransportConfig::default();
        let mut c = ClientConn::new(3, cfg);
        let mut s = ServerConn::new(77, cfg);
        c.queue(1, 1_200, true);
        c.connect(
            SimTime::ZERO,
            Some(ResumeToken {
                server_id: 77,
                value: 999_999, // never issued
            }),
        );
        pump(&mut c, &mut s, SimTime::from_millis(1));
        assert_eq!(s.zero_rtt_rejected, 1);
        // Data still arrives via 1-RTT resend.
        assert_eq!(s.delivered(3), 1_200);
        assert!(c
            .take_events()
            .iter()
            .any(|e| matches!(e, ConnEvent::Connected { zero_rtt: false })));
    }

    #[test]
    fn retransmission_on_loss() {
        let cfg = TransportConfig {
            window: 4,
            ..TransportConfig::default()
        };
        let mut c = ClientConn::new(4, cfg);
        let mut s = ServerConn::new(77, cfg);
        c.queue(1, 4 * 1_200, true);
        c.connect(SimTime::ZERO, None);
        // Handshake.
        for f in c.take_output() {
            s.on_frame(SimTime::ZERO, &f);
        }
        for f in s.take_output() {
            c.on_frame(SimTime::from_millis(10), &f);
        }
        // Drop the first data packet; deliver the rest.
        let flight = c.take_output();
        assert_eq!(flight.len(), 4);
        for f in flight.iter().skip(1) {
            s.on_frame(SimTime::from_millis(20), f);
        }
        for f in s.take_output() {
            c.on_frame(SimTime::from_millis(30), &f);
        }
        // Sacks acked 3 of 4; one remains. Fire the RTO.
        assert_eq!(c.acked_bytes(), 3 * 1_200);
        c.on_tick(SimTime::from_secs(2));
        assert!(c.retransmissions >= 1);
        for f in c.take_output() {
            s.on_frame(SimTime::from_secs(2), &f);
        }
        for f in s.take_output() {
            c.on_frame(SimTime::from_secs(2), &f);
        }
        assert_eq!(c.acked_bytes(), 4 * 1_200);
        assert_eq!(s.delivered(4), 4 * 1_200);
    }

    #[test]
    fn fec_recovers_single_loss_without_retransmission() {
        let cfg = TransportConfig {
            fec_k: 4,
            window: 8,
            ..TransportConfig::default()
        };
        let mut c = ClientConn::new(5, cfg);
        let mut s = ServerConn::new(77, cfg);
        c.queue(1, 4 * 1_200, true);
        c.connect(SimTime::ZERO, None);
        for f in c.take_output() {
            s.on_frame(SimTime::ZERO, &f);
        }
        for f in s.take_output() {
            c.on_frame(SimTime::from_millis(10), &f);
        }
        // The flight: 4 data + 1 parity. Drop data packet #2.
        let flight = c.take_output();
        assert_eq!(flight.len(), 5, "4 data + parity");
        for (i, f) in flight.iter().enumerate() {
            if i != 2 {
                s.on_frame(SimTime::from_millis(20), f);
            }
        }
        assert_eq!(s.fec_recoveries, 1, "parity healed the loss");
        assert_eq!(s.delivered(5), 4 * 1_200);
        // Client receives acks covering everything: no retransmission.
        for f in s.take_output() {
            c.on_frame(SimTime::from_millis(30), &f);
        }
        assert_eq!(c.retransmissions, 0);
        assert_eq!(c.acked_bytes(), 4 * 1_200);
    }

    #[test]
    fn migration_keeps_connection_alive() {
        let cfg = TransportConfig::default();
        let mut c = ClientConn::new(6, cfg);
        let mut s = ServerConn::new(77, cfg);
        c.queue(1, 24_000, false);
        c.connect(SimTime::ZERO, None);
        pump(&mut c, &mut s, SimTime::from_millis(1));
        assert_eq!(c.acked_bytes(), 24_000);
        let cid_before = c.cid();
        // Address change mid-connection.
        c.on_address_change(SimTime::from_secs(1));
        assert_eq!(c.cid(), cid_before, "CID survives");
        assert!(c.is_established());
        assert!(c.take_events().contains(&ConnEvent::Migrated));
        // More data flows without a new handshake.
        c.queue(1, 12_000, true);
        c.fill_window(SimTime::from_secs(1));
        pump(&mut c, &mut s, SimTime::from_secs(1));
        assert_eq!(c.acked_bytes(), 36_000);
        assert_eq!(c.handshakes, 1, "no second handshake");
    }

    #[test]
    fn legacy_dies_on_address_change() {
        let cfg = TransportConfig::legacy();
        let mut c = ClientConn::new(7, cfg);
        let mut s = ServerConn::new(77, cfg);
        c.queue(1, 12_000, false);
        c.connect(SimTime::ZERO, None);
        pump(&mut c, &mut s, SimTime::from_millis(1));
        let cid_before = c.cid();
        c.on_address_change(SimTime::from_secs(1));
        assert_ne!(c.cid(), cid_before, "new connection identity");
        assert!(!c.is_established());
        // A full reconnect is required; unacked data resumes after it.
        c.queue(1, 1_200, true);
        c.connect(SimTime::from_secs(1), None);
        pump(&mut c, &mut s, SimTime::from_secs(1));
        assert_eq!(c.handshakes, 2);
        assert!(c.is_established());
        assert_eq!(c.acked_bytes(), 13_200);
    }

    #[test]
    fn legacy_orders_globally_modern_does_not() {
        // Two streams; stream 1's first chunk is "lost" initially.
        let run = |cfg: TransportConfig| -> (u64, u64) {
            let mut c = ClientConn::new(8, cfg);
            let mut s = ServerConn::new(77, cfg);
            c.queue(1, 1_200, false); // global [0, 1200)
            c.queue(2, 1_200, false); // global [1200, 2400)
            c.connect(SimTime::ZERO, None);
            for f in c.take_output() {
                s.on_frame(SimTime::ZERO, &f);
            }
            for f in s.take_output() {
                c.on_frame(SimTime::from_millis(10), &f);
            }
            let flight = c.take_output();
            assert_eq!(flight.len(), 2);
            // Deliver only the SECOND chunk.
            s.on_frame(SimTime::from_millis(20), &flight[1]);
            let delivered_before = s
                .conns
                .values()
                .map(|c| c.receiver.total_delivered())
                .sum::<u64>();
            s.on_frame(SimTime::from_millis(21), &flight[0]);
            let delivered_after = s
                .conns
                .values()
                .map(|c| c.receiver.total_delivered())
                .sum::<u64>();
            (delivered_before, delivered_after)
        };
        let (modern_before, modern_after) = run(TransportConfig::default());
        assert_eq!(modern_before, 1_200, "independent stream delivered at once");
        assert_eq!(modern_after, 2_400);
        let (legacy_before, legacy_after) = run(TransportConfig::legacy());
        assert_eq!(legacy_before, 0, "legacy HoL blocks the later bytes");
        assert_eq!(legacy_after, 2_400);
    }
}
