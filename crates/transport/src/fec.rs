//! XOR-parity forward error correction.
//!
//! Sender: after every `k` data packets, emit one parity packet covering
//! them. Receiver: a group with exactly one missing data packet can be
//! repaired from the parity — no retransmission RTT paid. This is the
//! "forward error correction to mask discontinuity" of §4.2: during the
//! seconds around an AP change, isolated losses are healed locally.
//!
//! Payloads are abstract in this simulation, so the decoder tracks packet
//! *numbers*; recovering a packet means learning that its chunk can be
//! delivered (the connection keeps the pn → chunk map).

use crate::frames::PacketNum;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Sender-side group accumulator.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FecEncoder {
    group: Vec<PacketNum>,
    k: u32,
}

impl FecEncoder {
    /// `k` data packets per parity packet. `k = 0` disables FEC.
    pub fn new(k: u32) -> Self {
        FecEncoder {
            group: Vec::new(),
            k,
        }
    }

    /// Record a sent data packet; returns the cover list for a parity
    /// packet when the group is full.
    pub fn on_data(&mut self, pn: PacketNum) -> Option<Vec<PacketNum>> {
        if self.k == 0 {
            return None;
        }
        self.group.push(pn);
        if self.group.len() as u32 >= self.k {
            Some(std::mem::take(&mut self.group))
        } else {
            None
        }
    }

    /// Flush a partial group (end of transfer).
    pub fn flush(&mut self) -> Option<Vec<PacketNum>> {
        if self.k == 0 || self.group.is_empty() {
            None
        } else {
            Some(std::mem::take(&mut self.group))
        }
    }
}

/// Receiver-side: which packets can a parity frame recover?
///
/// Given the set of received packet numbers and a parity cover list, if
/// exactly one covered packet is missing it is recoverable.
pub fn recoverable(received: &BTreeSet<PacketNum>, covers: &[PacketNum]) -> Option<PacketNum> {
    let mut missing = covers.iter().filter(|pn| !received.contains(pn));
    let first = missing.next()?;
    if missing.next().is_some() {
        None // ≥2 missing: XOR parity cannot help
    } else {
        Some(*first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_groups_every_k() {
        let mut e = FecEncoder::new(3);
        assert_eq!(e.on_data(0), None);
        assert_eq!(e.on_data(1), None);
        assert_eq!(e.on_data(2), Some(vec![0, 1, 2]));
        assert_eq!(e.on_data(3), None, "new group starts");
        assert_eq!(e.flush(), Some(vec![3]));
        assert_eq!(e.flush(), None, "flush is idempotent");
    }

    #[test]
    fn disabled_encoder_never_emits() {
        let mut e = FecEncoder::new(0);
        for pn in 0..10 {
            assert_eq!(e.on_data(pn), None);
        }
        assert_eq!(e.flush(), None);
    }

    #[test]
    fn single_loss_recoverable() {
        let received: BTreeSet<_> = [0u64, 2, 3].into_iter().collect();
        assert_eq!(recoverable(&received, &[0, 1, 2, 3]), Some(1));
    }

    #[test]
    fn no_loss_nothing_to_recover() {
        let received: BTreeSet<_> = [0u64, 1, 2].into_iter().collect();
        assert_eq!(recoverable(&received, &[0, 1, 2]), None);
    }

    #[test]
    fn double_loss_unrecoverable() {
        let received: BTreeSet<_> = [0u64, 3].into_iter().collect();
        assert_eq!(recoverable(&received, &[0, 1, 2, 3]), None);
    }
}
