//! Transport frames.
//!
//! Each simulated packet carries exactly one frame (simplification: QUIC
//! coalescing only changes constant factors). Payload bytes are abstract —
//! the simulation accounts sizes, not contents.

use serde::{Deserialize, Serialize};

/// Connection identifier — the stable name that survives address changes.
pub type Cid = u64;

/// Packet number within a connection.
pub type PacketNum = u64;

/// A resumption token (session ticket). Possession enables 0-RTT at the
/// issuing server.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ResumeToken {
    /// Which server identity issued it.
    pub server_id: u64,
    /// Opaque value (validated by equality).
    pub value: u64,
}

/// One data chunk of one stream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Chunk {
    pub stream: u64,
    pub offset: u64,
    pub len: u32,
    pub fin: bool,
}

/// Transport frames.
#[derive(Clone, Debug)]
pub enum Frame {
    /// Client's first flight. With a valid `token`, `early` chunks are
    /// 0-RTT data accepted before the handshake completes.
    ClientHello {
        cid: Cid,
        token: Option<ResumeToken>,
        early: Vec<(PacketNum, Chunk)>,
    },
    /// Server completes the handshake and issues a fresh token.
    ServerHello {
        cid: Cid,
        token: ResumeToken,
        early_accepted: bool,
    },
    /// Reliable stream data.
    Data {
        cid: Cid,
        pn: PacketNum,
        chunk: Chunk,
    },
    /// XOR parity over a group of data packets. Covers carry the chunk
    /// framing so a repaired packet can be delivered (a real XOR parity
    /// reconstructs the full covered payload including its framing).
    Parity {
        cid: Cid,
        covers: Vec<(PacketNum, Chunk)>,
    },
    /// Acknowledgement: QUIC-style ranges of received packet numbers
    /// (inclusive), most recent first. Retransmitted chunks ride fresh
    /// packet numbers, so a cumulative ack would wedge behind permanently
    /// lost numbers; ranges do not.
    Ack {
        cid: Cid,
        ranges: Vec<(PacketNum, PacketNum)>,
    },
    /// Path validation after migration (server → client on the new path).
    PathChallenge {
        cid: Cid,
        nonce: u64,
    },
    PathResponse {
        cid: Cid,
        nonce: u64,
    },
    /// Orderly close.
    Close {
        cid: Cid,
    },
}

impl Frame {
    /// The connection this frame belongs to.
    pub fn cid(&self) -> Cid {
        match self {
            Frame::ClientHello { cid, .. }
            | Frame::ServerHello { cid, .. }
            | Frame::Data { cid, .. }
            | Frame::Parity { cid, .. }
            | Frame::Ack { cid, .. }
            | Frame::PathChallenge { cid, .. }
            | Frame::PathResponse { cid, .. }
            | Frame::Close { cid } => *cid,
        }
    }

    /// On-wire size in bytes (headers + abstract payload lengths).
    pub fn wire_bytes(&self) -> u32 {
        const HDR: u32 = 40; // UDP/IP + short header
        match self {
            Frame::ClientHello { early, .. } => {
                HDR + 80 + early.iter().map(|(_, c)| c.len).sum::<u32>()
            }
            Frame::ServerHello { .. } => HDR + 80,
            Frame::Data { chunk, .. } => HDR + 8 + chunk.len,
            Frame::Parity { covers, .. } => HDR + 8 + 16 * covers.len() as u32 + 1200,
            Frame::Ack { ranges, .. } => HDR + 12 + 8 * ranges.len() as u32,
            Frame::PathChallenge { .. } | Frame::PathResponse { .. } => HDR + 16,
            Frame::Close { .. } => HDR + 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cid_extraction_covers_all_variants() {
        let chunk = Chunk {
            stream: 1,
            offset: 0,
            len: 100,
            fin: false,
        };
        let frames = vec![
            Frame::ClientHello {
                cid: 7,
                token: None,
                early: vec![],
            },
            Frame::ServerHello {
                cid: 7,
                token: ResumeToken {
                    server_id: 1,
                    value: 2,
                },
                early_accepted: false,
            },
            Frame::Data {
                cid: 7,
                pn: 0,
                chunk,
            },
            Frame::Parity {
                cid: 7,
                covers: vec![(0, chunk), (1, chunk)],
            },
            Frame::Ack {
                cid: 7,
                ranges: vec![(0, 4)],
            },
            Frame::PathChallenge { cid: 7, nonce: 9 },
            Frame::PathResponse { cid: 7, nonce: 9 },
            Frame::Close { cid: 7 },
        ];
        for f in frames {
            assert_eq!(f.cid(), 7);
            assert!(f.wire_bytes() >= 40, "{f:?}");
        }
    }

    #[test]
    fn data_size_includes_payload() {
        let f = Frame::Data {
            cid: 1,
            pn: 0,
            chunk: Chunk {
                stream: 0,
                offset: 0,
                len: 1200,
                fin: false,
            },
        };
        assert_eq!(f.wire_bytes(), 40 + 8 + 1200);
    }

    #[test]
    fn zero_rtt_hello_carries_data() {
        let f = Frame::ClientHello {
            cid: 1,
            token: Some(ResumeToken {
                server_id: 1,
                value: 42,
            }),
            early: vec![(
                0,
                Chunk {
                    stream: 0,
                    offset: 0,
                    len: 1000,
                    fin: false,
                },
            )],
        };
        assert!(f.wire_bytes() > 1000);
    }
}
