//! Network adapters: run the connection machines over `dlte-net`.
//!
//! [`TransportClientNode`] and [`TransportServerNode`] are standalone
//! host handlers used by the transport-level tests and the E12 ablation
//! bench. The dLTE UE integration (transport riding on an LTE attach state
//! machine) lives in the `dlte` core crate, which drives the same
//! [`ClientConn`] through its UE upper-layer hook.

use crate::connection::{ClientConn, ConnEvent, ServerConn, TransportConfig};
use crate::frames::{Frame, ResumeToken};
use dlte_net::{Addr, NodeCtx, NodeHandler, Packet, Payload};
use dlte_sim::{SimDuration, SimTime};
use std::collections::HashMap;

const TAG_TICK: u64 = 42_000;

/// Client host: connects to a server, uploads `transfer_bytes`, records
/// completion.
pub struct TransportClientNode {
    pub conn: ClientConn,
    pub server_addr: Addr,
    pub token_cache: Option<ResumeToken>,
    pub connected_at: Option<SimTime>,
    pub completed_at: Option<SimTime>,
    pub tick: SimDuration,
    transfer_bytes: u64,
}

impl TransportClientNode {
    pub fn new(cfg: TransportConfig, server_addr: Addr, transfer_bytes: u64) -> Self {
        let mut conn = ClientConn::new(1, cfg);
        conn.queue(1, transfer_bytes, true);
        TransportClientNode {
            conn,
            server_addr,
            token_cache: None,
            connected_at: None,
            completed_at: None,
            tick: SimDuration::from_millis(10),
            transfer_bytes,
        }
    }

    fn flush(&mut self, ctx: &mut NodeCtx<'_>) {
        for frame in self.conn.take_output() {
            let bytes = frame.wire_bytes();
            let p = ctx
                .make_packet(self.server_addr, bytes)
                .with_payload(Payload::control(frame));
            ctx.forward(p);
        }
        for ev in self.conn.take_events() {
            match ev {
                ConnEvent::TokenIssued(t) => self.token_cache = Some(t),
                ConnEvent::Connected { .. } => {
                    self.connected_at.get_or_insert(ctx.now);
                }
                ConnEvent::AllAcked { bytes } if bytes >= self.transfer_bytes => {
                    self.completed_at.get_or_insert(ctx.now);
                }
                _ => {}
            }
        }
    }
}

impl NodeHandler for TransportClientNode {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let token = self.token_cache;
        self.conn.connect(ctx.now, token);
        self.flush(ctx);
        let tick = self.tick;
        ctx.set_timer(tick, TAG_TICK);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag == TAG_TICK {
            self.conn.on_tick(ctx.now);
            self.flush(ctx);
            let tick = self.tick;
            ctx.set_timer(tick, TAG_TICK);
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(frame) = packet.payload.as_control::<Frame>() {
            let frame = frame.clone();
            self.conn.on_frame(ctx.now, &frame);
            self.flush(ctx);
        }
    }
}

/// Server host: accepts connections, acks, tracks per-path peers.
pub struct TransportServerNode {
    pub server: ServerConn,
    /// Latest validated-ish source address per connection (migration).
    peer_of: HashMap<u64, Addr>,
    pub path_changes: u64,
}

impl TransportServerNode {
    pub fn new(server_id: u64, cfg: TransportConfig) -> Self {
        TransportServerNode {
            server: ServerConn::new(server_id, cfg),
            peer_of: HashMap::new(),
            path_changes: 0,
        }
    }
}

impl NodeHandler for TransportServerNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        let Some(frame) = packet.payload.as_control::<Frame>() else {
            return;
        };
        let frame = frame.clone();
        let cid = frame.cid();
        // Track the peer path; a change means the client migrated. QUIC
        // would validate before fully trusting the path — we adopt it
        // immediately and send a challenge for the books (the validation
        // RTT is borne by the client's first response).
        match self.peer_of.get(&cid) {
            Some(&old) if old != packet.src => {
                self.path_changes += 1;
                self.peer_of.insert(cid, packet.src);
                let challenge = Frame::PathChallenge {
                    cid,
                    nonce: self.path_changes,
                };
                let bytes = challenge.wire_bytes();
                let p = ctx
                    .make_packet(packet.src, bytes)
                    .with_payload(Payload::control(challenge));
                ctx.forward(p);
            }
            None => {
                self.peer_of.insert(cid, packet.src);
            }
            _ => {}
        }
        self.server.on_frame(ctx.now, &frame);
        let peer = self.peer_of[&cid];
        for out in self.server.take_output() {
            let bytes = out.wire_bytes();
            let p = ctx
                .make_packet(peer, bytes)
                .with_payload(Payload::control(out));
            ctx.forward(p);
        }
        // Server-side events are inspected after the run via `self.server`.
        let _ = self.server.take_events();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_net::{LinkConfig, NetworkBuilder, Prefix};
    use dlte_sim::SimTime;

    fn transfer_over_seed(
        cfg: TransportConfig,
        loss: f64,
        bytes: u64,
        seed: u64,
    ) -> (Option<SimTime>, u64, u64) {
        let mut b = NetworkBuilder::new(seed);
        let server_addr = Addr::new(10, 0, 0, 2);
        let client_addr = Addr::new(10, 0, 0, 1);
        let client = b.host(
            "client",
            Box::new(TransportClientNode::new(cfg, server_addr, bytes)),
        );
        b.addr(client, client_addr);
        let server = b.host("server", Box::new(TransportServerNode::new(7, cfg)));
        b.addr(server, server_addr);
        let mut link = LinkConfig {
            delay: SimDuration::from_millis(20),
            rate_bps: 50e6,
            queue_pkts: 500,
            loss,
        };
        link.loss = loss;
        let l = b.link(client, server, link);
        b.route(client, Prefix::new(server_addr, 32), l);
        b.route(server, Prefix::new(client_addr, 32), l);
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(60), 5_000_000);
        let w = sim.world();
        let c = w.handler_as::<TransportClientNode>(client).unwrap();
        let s = w.handler_as::<TransportServerNode>(server).unwrap();
        (
            c.completed_at,
            c.conn.retransmissions,
            s.server.fec_recoveries,
        )
    }

    fn transfer_over(cfg: TransportConfig, loss: f64, bytes: u64) -> (Option<SimTime>, u64, u64) {
        transfer_over_seed(cfg, loss, bytes, 21)
    }

    #[test]
    fn clean_link_transfer_completes_quickly() {
        let (done, retx, _) = transfer_over(TransportConfig::default(), 0.0, 120_000);
        let done = done.expect("completed");
        // 100 chunks, window 32, RTT 40 ms ⇒ 1 handshake + ~4 windows ≈ 0.2 s.
        assert!(done < SimTime::from_millis(400), "done at {done}");
        assert_eq!(retx, 0);
    }

    #[test]
    fn lossy_link_still_completes_via_retransmission() {
        let (done, retx, _) = transfer_over(TransportConfig::default(), 0.05, 120_000);
        assert!(done.is_some(), "5% loss must not kill the transfer");
        assert!(retx > 0, "loss must have caused retransmissions");
    }

    #[test]
    fn fec_reduces_retransmissions_on_lossy_link() {
        // Aggregate over seeds: individual runs see only a handful of loss
        // events, so a single seed is too noisy for a strict inequality.
        let mut retx_nofec = 0;
        let mut retx_fec = 0;
        let mut rec_fec = 0;
        for seed in [1u64, 21, 33, 44, 55] {
            let (_, r0, f0) = transfer_over_seed(TransportConfig::default(), 0.03, 240_000, seed);
            let (_, r1, f1) = transfer_over_seed(TransportConfig::modern(), 0.03, 240_000, seed);
            assert_eq!(f0, 0, "no recoveries without FEC");
            retx_nofec += r0;
            retx_fec += r1;
            rec_fec += f1;
        }
        assert!(rec_fec > 0, "FEC recovered losses");
        assert!(
            retx_fec * 2 < retx_nofec,
            "FEC {retx_fec} should roughly halve no-FEC {retx_nofec}"
        );
    }
}
