//! # dlte-transport — service continuity without network mobility
//!
//! §4.2: *"dLTE does not support IP address mobility, leaving service
//! continuity to endpoint transport and application layers... current-
//! generation transport protocols make this approach more feasible than it
//! was in the past, incorporating zero RTT secure flow resumption, forward
//! error correction to mask discontinuity, non head of line blocking, and
//! multiple IP address support for client managed handoff."*
//!
//! This crate implements exactly that feature list as a QUIC-shaped
//! transport over the packet substrate:
//!
//! * connections identified by **connection ID**, not 4-tuple ([`connection`]);
//! * **1-RTT** handshake and **0-RTT resumption** from cached tokens;
//! * **connection migration**: the client keeps the CID across an address
//!   change and revalidates the new path;
//! * **XOR-parity FEC** groups that mask isolated losses ([`fec`]);
//! * **independent streams** with per-stream ordering, so one stream's loss
//!   never blocks another ([`streams`]) — plus a deliberate *legacy mode*
//!   that reproduces TCP's global ordering and 4-tuple binding, used as the
//!   baseline in experiments E8/E12.
//!
//! Omissions, documented: congestion control is a fixed window (the
//! experiments stress control-plane churn, not bandwidth probing), and
//! cryptography is absent (key exchange is modeled by the handshake RTT,
//! which is the cost the architecture argument cares about).

pub mod connection;
pub mod fec;
pub mod frames;
pub mod handlers;
pub mod rtt;
pub mod streams;

pub use connection::{ClientConn, ConnEvent, ServerConn, TransportConfig};
pub use frames::{Frame, ResumeToken};
pub use handlers::{TransportClientNode, TransportServerNode};
