//! RTT estimation and retransmission timeout (RFC 6298 shape).

use dlte_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Smoothed RTT estimator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    /// Lower bound on the computed RTO.
    pub min_rto: SimDuration,
    /// Upper bound (keeps pathological samples from freezing a flow).
    pub max_rto: SimDuration,
    /// Current backoff multiplier (doubles per timeout, resets on sample).
    backoff: u32,
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rto: SimDuration::from_millis(20),
            max_rto: SimDuration::from_secs(10),
            backoff: 0,
        }
    }
}

impl RttEstimator {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one RTT sample (resets timeout backoff).
    pub fn sample(&mut self, rtt: SimDuration) {
        self.backoff = 0;
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RFC 6298: alpha = 1/8, beta = 1/4, in integer nanoseconds.
                let diff = if srtt > rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3 + diff) / 4;
                self.srtt = Some((srtt * 7 + rtt) / 8);
            }
        }
    }

    /// Current smoothed RTT (None before the first sample).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Retransmission timeout: `srtt + 4·rttvar`, backed off exponentially,
    /// clamped to `[min_rto, max_rto]`. Without samples, a conservative
    /// initial 1 s (backed off).
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            Some(srtt) => srtt + self.rttvar * 4,
            None => SimDuration::from_secs(1),
        };
        let backed = base * (1u64 << self.backoff.min(10));
        backed.max(self.min_rto).min(self.max_rto)
    }

    /// Register a timeout (exponential backoff).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(10);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut r = RttEstimator::new();
        assert_eq!(r.srtt(), None);
        r.sample(SimDuration::from_millis(100));
        assert_eq!(r.srtt(), Some(SimDuration::from_millis(100)));
        // RTO = 100 + 4×50 = 300 ms.
        assert_eq!(r.rto(), SimDuration::from_millis(300));
    }

    #[test]
    fn smoothing_converges() {
        let mut r = RttEstimator::new();
        for _ in 0..100 {
            r.sample(SimDuration::from_millis(80));
        }
        let srtt = r.srtt().unwrap().as_millis();
        assert!((79..=81).contains(&srtt), "{srtt}");
        // Variance collapses → RTO approaches srtt (clamped by min).
        assert!(r.rto() < SimDuration::from_millis(100));
    }

    #[test]
    fn timeout_backoff_doubles_and_sample_resets() {
        let mut r = RttEstimator::new();
        r.sample(SimDuration::from_millis(50));
        let base = r.rto();
        r.on_timeout();
        assert_eq!(r.rto(), base * 2);
        r.on_timeout();
        assert_eq!(r.rto(), base * 4);
        r.sample(SimDuration::from_millis(50));
        assert!(r.rto() <= base * 2, "backoff reset on fresh sample");
    }

    #[test]
    fn rto_clamped() {
        let mut r = RttEstimator::new();
        r.sample(SimDuration::from_micros(1));
        assert!(r.rto() >= r.min_rto);
        for _ in 0..20 {
            r.on_timeout();
        }
        assert!(r.rto() <= r.max_rto);
    }

    #[test]
    fn initial_rto_is_one_second() {
        let r = RttEstimator::new();
        assert_eq!(r.rto(), SimDuration::from_secs(1));
    }
}
