//! Receive-side stream reassembly, with and without cross-stream blocking.
//!
//! Modern mode: each stream delivers its own contiguous prefix
//! independently — a hole in stream A never delays stream B ("non head of
//! line blocking", §4.2). Legacy mode (the TCP baseline): all chunks share
//! one global sequence space and delivery is strictly in global order, so
//! one hole stalls everything.

use crate::frames::Chunk;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One stream's reassembly state: contiguous delivery offset + out-of-order
/// segments.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StreamAssembler {
    delivered: u64,
    /// Pending segments keyed by offset → (len, fin).
    pending: BTreeMap<u64, (u32, bool)>,
    fin_at: Option<u64>,
}

impl StreamAssembler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes delivered in order so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// True once FIN's offset has been delivered.
    pub fn finished(&self) -> bool {
        matches!(self.fin_at, Some(end) if self.delivered >= end)
    }

    /// Accept a segment; returns bytes newly deliverable in order.
    pub fn insert(&mut self, offset: u64, len: u32, fin: bool) -> u64 {
        if fin {
            self.fin_at = Some(offset + len as u64);
        }
        let end = offset + len as u64;
        if end > self.delivered {
            // Store (possibly overlapping) segment; merge lazily on drain.
            let e = self.pending.entry(offset).or_insert((len, fin));
            if (e.0 as u64) < len as u64 {
                *e = (len, fin || e.1);
            }
        }
        self.drain()
    }

    fn drain(&mut self) -> u64 {
        let before = self.delivered;
        loop {
            let mut advanced = false;
            // Find any pending segment that starts at or before `delivered`
            // and extends it.
            let keys: Vec<u64> = self
                .pending
                .range(..=self.delivered)
                .map(|(&k, _)| k)
                .collect();
            for k in keys {
                let (len, _fin) = self.pending[&k];
                let end = k + len as u64;
                self.pending.remove(&k);
                if end > self.delivered {
                    self.delivered = end;
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
        self.delivered - before
    }

    /// Number of buffered out-of-order segments (diagnostics).
    pub fn pending_segments(&self) -> usize {
        self.pending.len()
    }
}

/// Multi-stream receiver.
#[derive(Clone, Debug, Default)]
pub struct Receiver {
    /// Legacy mode: single global order across streams.
    legacy: bool,
    streams: BTreeMap<u64, StreamAssembler>,
    /// Legacy global assembler (keyed by a virtual global offset the sender
    /// guarantees: chunks must arrive tagged with disjoint global ranges —
    /// we reuse (stream, offset) ordering by mapping into one space).
    global: StreamAssembler,
}

impl Receiver {
    pub fn modern() -> Self {
        Receiver {
            legacy: false,
            ..Default::default()
        }
    }

    pub fn legacy() -> Self {
        Receiver {
            legacy: true,
            ..Default::default()
        }
    }

    /// Accept a chunk. For legacy mode the caller provides the chunk's
    /// global offset (its position in the single byte stream); for modern
    /// mode `global_offset` is ignored.
    ///
    /// Returns total bytes newly delivered to the application.
    pub fn accept(&mut self, chunk: Chunk, global_offset: u64) -> u64 {
        if self.legacy {
            self.global.insert(global_offset, chunk.len, chunk.fin)
        } else {
            self.streams
                .entry(chunk.stream)
                .or_default()
                .insert(chunk.offset, chunk.len, chunk.fin)
        }
    }

    /// Total in-order bytes delivered.
    pub fn total_delivered(&self) -> u64 {
        if self.legacy {
            self.global.delivered()
        } else {
            self.streams.values().map(|s| s.delivered()).sum()
        }
    }

    /// Per-stream delivered bytes (modern mode; legacy reports the global
    /// count under stream 0).
    pub fn delivered_on(&self, stream: u64) -> u64 {
        if self.legacy {
            if stream == 0 {
                self.global.delivered()
            } else {
                0
            }
        } else {
            self.streams.get(&stream).map_or(0, |s| s.delivered())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(stream: u64, offset: u64, len: u32) -> Chunk {
        Chunk {
            stream,
            offset,
            len,
            fin: false,
        }
    }

    #[test]
    fn in_order_delivery() {
        let mut a = StreamAssembler::new();
        assert_eq!(a.insert(0, 100, false), 100);
        assert_eq!(a.insert(100, 100, false), 100);
        assert_eq!(a.delivered(), 200);
        assert_eq!(a.pending_segments(), 0);
    }

    #[test]
    fn hole_blocks_then_releases() {
        let mut a = StreamAssembler::new();
        assert_eq!(a.insert(100, 100, false), 0, "hole at 0..100");
        assert_eq!(a.insert(200, 100, false), 0);
        assert_eq!(a.pending_segments(), 2);
        // Filling the hole releases everything.
        assert_eq!(a.insert(0, 100, false), 300);
        assert_eq!(a.delivered(), 300);
    }

    #[test]
    fn duplicates_and_overlaps_are_harmless() {
        let mut a = StreamAssembler::new();
        a.insert(0, 100, false);
        assert_eq!(a.insert(0, 100, false), 0, "exact duplicate");
        assert_eq!(a.insert(50, 100, false), 50, "overlap extends");
        assert_eq!(a.delivered(), 150);
    }

    #[test]
    fn fin_tracking() {
        let mut a = StreamAssembler::new();
        a.insert(100, 50, true);
        assert!(!a.finished(), "fin known but hole remains");
        a.insert(0, 100, false);
        assert!(a.finished());
    }

    #[test]
    fn modern_streams_are_independent_no_hol() {
        let mut r = Receiver::modern();
        // Stream 1 has a hole; stream 2 flows freely.
        r.accept(chunk(1, 100, 100), 0);
        let d2 = r.accept(chunk(2, 0, 100), 0);
        assert_eq!(d2, 100, "stream 2 delivers despite stream 1's hole");
        assert_eq!(r.delivered_on(1), 0);
        assert_eq!(r.delivered_on(2), 100);
    }

    #[test]
    fn legacy_global_order_blocks_everything() {
        let mut r = Receiver::legacy();
        // Same arrival pattern mapped to one global sequence:
        // stream-1 chunk occupies global [0,100), stream-2 global [100,200).
        // The stream-1 chunk is lost/late, so stream-2's data stalls.
        let d = r.accept(chunk(2, 0, 100), 100);
        assert_eq!(d, 0, "legacy HoL: later global bytes stall");
        let d = r.accept(chunk(1, 0, 100), 0);
        assert_eq!(d, 200, "hole filled, everything drains");
        assert_eq!(r.total_delivered(), 200);
    }
}
