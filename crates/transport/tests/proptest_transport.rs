//! Property-based tests for transport invariants: reassembly under
//! arbitrary reordering/duplication, FEC semantics, RTO bounds, and
//! loss-free end-to-end agreement of the connection machines.

use dlte_sim::{SimDuration, SimRng, SimTime};
use dlte_transport::connection::{ClientConn, ServerConn, TransportConfig};
use dlte_transport::fec::{recoverable, FecEncoder};
use dlte_transport::rtt::RttEstimator;
use dlte_transport::streams::StreamAssembler;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    /// Whatever order (and however duplicated) segments arrive in, the
    /// assembler delivers each byte exactly once and ends fully drained.
    #[test]
    fn assembler_delivers_exactly_once(
        n_segs in 1usize..40,
        seed in 0u64..500,
        dup_prob in 0.0f64..0.5,
    ) {
        let seg_len = 100u32;
        let mut order: Vec<u64> = (0..n_segs as u64).collect();
        let mut rng = SimRng::new(seed);
        rng.shuffle(&mut order);
        let mut a = StreamAssembler::new();
        let mut delivered_total = 0u64;
        for &i in &order {
            delivered_total += a.insert(i * seg_len as u64, seg_len, false);
            if rng.chance(dup_prob) {
                // Duplicate delivers nothing new.
                prop_assert_eq!(a.insert(i * seg_len as u64, seg_len, false), 0);
            }
        }
        prop_assert_eq!(delivered_total, n_segs as u64 * seg_len as u64);
        prop_assert_eq!(a.delivered(), delivered_total);
        prop_assert_eq!(a.pending_segments(), 0, "fully drained");
    }

    /// Delivered count never decreases and never exceeds the contiguous
    /// byte horizon.
    #[test]
    fn assembler_monotone(
        inserts in prop::collection::vec((0u64..5_000, 1u32..300), 1..60),
    ) {
        let mut a = StreamAssembler::new();
        let mut prev = 0;
        for &(off, len) in &inserts {
            a.insert(off, len, false);
            prop_assert!(a.delivered() >= prev);
            prev = a.delivered();
        }
    }

    /// FEC encoder covers every data packet exactly once across groups.
    #[test]
    fn fec_groups_partition(k in 1u32..10, n in 1u64..100) {
        let mut enc = FecEncoder::new(k);
        let mut covered: Vec<u64> = Vec::new();
        for pn in 0..n {
            if let Some(group) = enc.on_data(pn) {
                covered.extend(group);
            }
        }
        if let Some(group) = enc.flush() {
            covered.extend(group);
        }
        covered.sort_unstable();
        prop_assert_eq!(covered, (0..n).collect::<Vec<_>>());
    }

    /// `recoverable` returns Some iff exactly one cover is missing.
    #[test]
    fn fec_recoverable_semantics(
        covers in prop::collection::btree_set(0u64..50, 1..10),
        received in prop::collection::btree_set(0u64..50, 0..50),
    ) {
        let covers: Vec<u64> = covers.into_iter().collect();
        let received: BTreeSet<u64> = received;
        let missing: Vec<u64> = covers
            .iter()
            .filter(|pn| !received.contains(pn))
            .copied()
            .collect();
        let got = recoverable(&received, &covers);
        match missing.len() {
            1 => prop_assert_eq!(got, Some(missing[0])),
            _ => prop_assert_eq!(got, None),
        }
    }

    /// RTO stays within [min, max] under arbitrary sample/timeout
    /// interleavings.
    #[test]
    fn rto_bounded(ops in prop::collection::vec((any::<bool>(), 1u64..2_000), 1..100)) {
        let mut r = RttEstimator::new();
        for &(is_sample, ms) in &ops {
            if is_sample {
                r.sample(SimDuration::from_millis(ms));
            } else {
                r.on_timeout();
            }
            prop_assert!(r.rto() >= r.min_rto);
            prop_assert!(r.rto() <= r.max_rto);
        }
    }

    /// Over a perfect channel, client and server agree on the byte count
    /// for arbitrary multi-stream workloads, with zero retransmissions.
    #[test]
    fn lossless_transfer_agreement(
        chunks in prop::collection::vec((1u64..4, 1u64..20_000), 1..6),
        fec in prop_oneof![Just(0u32), Just(4u32), Just(8u32)],
    ) {
        let cfg = TransportConfig {
            fec_k: fec,
            ..TransportConfig::default()
        };
        let mut c = ClientConn::new(9, cfg);
        let mut s = ServerConn::new(77, cfg);
        let mut total = 0;
        for &(stream, bytes) in &chunks {
            c.queue(stream, bytes, false);
            total += bytes;
        }
        c.connect(SimTime::ZERO, None);
        // Pump until quiescent.
        for _ in 0..500 {
            let out = c.take_output();
            if out.is_empty() {
                break;
            }
            for f in &out {
                s.on_frame(SimTime::from_millis(1), f);
            }
            for f in s.take_output() {
                c.on_frame(SimTime::from_millis(2), &f);
            }
        }
        prop_assert_eq!(c.acked_bytes(), total);
        prop_assert_eq!(c.retransmissions, 0);
        // Server delivered every byte in order per stream.
        prop_assert_eq!(s.delivered(9), total);
    }

    /// Migration conservation under chaos: however much seeded loss and
    /// reordering the channel inflicts — including dropping the very frames
    /// in flight across one or more address switches — a migrating
    /// connection accounts for every queued byte once the storm ends:
    /// everything is eventually acknowledged and the server delivers each
    /// byte exactly once. In-flight data is never silently truncated.
    #[test]
    fn migration_conserves_bytes_under_loss_and_reorder(
        chunks in prop::collection::vec((1u64..4, 1u64..20_000), 1..6),
        seed in 0u64..500,
        loss in 0.0f64..0.45,
        n_migrations in 1usize..4,
        fec in prop_oneof![Just(0u32), Just(4u32)],
    ) {
        let cfg = TransportConfig {
            fec_k: fec,
            ..TransportConfig::default()
        };
        prop_assert!(cfg.migration, "modern default must migrate");
        let mut c = ClientConn::new(9, cfg);
        let mut s = ServerConn::new(77, cfg);
        let mut rng = SimRng::new(seed).fork("migration-chaos");
        let mut total = 0;
        for &(stream, bytes) in &chunks {
            c.queue(stream, bytes, false);
            total += bytes;
        }
        // Handshake over a clean channel so the address switches land on an
        // established connection (the migration path under test).
        c.connect(SimTime::ZERO, None);
        for f in c.take_output() {
            s.on_frame(SimTime::from_millis(1), &f);
        }
        for f in s.take_output() {
            c.on_frame(SimTime::from_millis(2), &f);
        }
        prop_assert!(c.is_established());

        // The storm: per-frame loss both ways, per-round reordering, and
        // address switches at seeded rounds while data is in flight.
        let mut migrate_at: Vec<usize> = (0..n_migrations)
            .map(|_| 1 + rng.index(40))
            .collect();
        migrate_at.sort_unstable();
        let mut migrations_seen = 0u64;
        for round in 0..2_000usize {
            let now = SimTime::from_millis(10 + 50 * round as u64);
            let stormy = round < 40;
            if stormy && migrate_at.contains(&round) {
                c.on_address_change(now);
                migrations_seen += 1;
            }
            c.on_tick(now);
            let mut up = c.take_output();
            if stormy {
                rng.shuffle(&mut up);
                up.retain(|_| !rng.chance(loss));
            }
            for f in &up {
                s.on_frame(now, f);
            }
            let mut down = s.take_output();
            if stormy {
                rng.shuffle(&mut down);
                down.retain(|_| !rng.chance(loss));
            }
            for f in &down {
                c.on_frame(now, f);
            }
            if c.acked_bytes() == total {
                break;
            }
        }
        // Conservation: every queued byte is accounted for.
        prop_assert_eq!(c.acked_bytes(), total, "queued bytes silently truncated");
        prop_assert_eq!(c.queued_bytes(), total);
        // The connection survived each switch rather than resetting: same
        // CID throughout, and one Migrated event per switch.
        prop_assert_eq!(c.cid(), 9);
        let migrated = c
            .take_events()
            .iter()
            .filter(|e| matches!(e, dlte_transport::connection::ConnEvent::Migrated))
            .count() as u64;
        prop_assert_eq!(migrated, migrations_seen);
        // Exactly-once delivery at the server: duplicates from spurious
        // retransmissions deliver nothing new.
        prop_assert_eq!(s.delivered(9), total);
    }
}
