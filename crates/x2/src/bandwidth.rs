//! X2 bandwidth budgeting.
//!
//! §4.3: *"The X2 interface is relatively low bandwidth, but when backhaul
//! constrained the level of coordination can be minimized"* (citing La
//! Roche & Widjaja's X2 sizing study \[28\]). This module gives the
//! closed-form overhead of each mode and the adaptation rule that fits the
//! coordination level to a backhaul budget.

use crate::messages::{wire, CoordinationMode};
use dlte_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Steady-state X2 traffic (bits/s, egress per AP) for a mode, peer count,
/// reporting interval and client count.
pub fn x2_bps(
    mode: CoordinationMode,
    n_peers: usize,
    report_interval: SimDuration,
    clients: usize,
) -> f64 {
    if n_peers == 0 || report_interval.is_zero() {
        return 0.0;
    }
    let per_report = match mode {
        CoordinationMode::Independent => return 0.0,
        CoordinationMode::FairShare => wire::LOAD_INFORMATION as f64,
        CoordinationMode::Cooperative => {
            (wire::LOAD_INFORMATION + wire::measurement(clients)) as f64
        }
    };
    per_report * 8.0 * n_peers as f64 / report_interval.as_secs_f64()
}

/// Coordination level chosen for a backhaul budget.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoordinationPlan {
    pub mode: CoordinationMode,
    pub report_interval: SimDuration,
    pub bps: f64,
}

/// Pick the richest coordination that fits within `budget_bps`, degrading
/// first by stretching the reporting interval (up to `max_interval`), then
/// by stepping the mode down. The paper's graceful-degradation story.
pub fn plan_for_budget(
    desired: CoordinationMode,
    n_peers: usize,
    clients: usize,
    base_interval: SimDuration,
    max_interval: SimDuration,
    budget_bps: f64,
) -> CoordinationPlan {
    let modes: &[CoordinationMode] = match desired {
        CoordinationMode::Cooperative => &[
            CoordinationMode::Cooperative,
            CoordinationMode::FairShare,
            CoordinationMode::Independent,
        ],
        CoordinationMode::FairShare => {
            &[CoordinationMode::FairShare, CoordinationMode::Independent]
        }
        CoordinationMode::Independent => &[CoordinationMode::Independent],
    };
    for &mode in modes {
        // Try intervals from base upward in ×2 steps.
        let mut interval = base_interval;
        loop {
            let bps = x2_bps(mode, n_peers, interval, clients);
            if bps <= budget_bps {
                return CoordinationPlan {
                    mode,
                    report_interval: interval,
                    bps,
                };
            }
            if interval >= max_interval {
                break;
            }
            interval = (interval * 2).min(max_interval);
        }
    }
    CoordinationPlan {
        mode: CoordinationMode::Independent,
        report_interval: max_interval,
        bps: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_ordering() {
        let i = SimDuration::from_millis(100);
        let indep = x2_bps(CoordinationMode::Independent, 4, i, 20);
        let fair = x2_bps(CoordinationMode::FairShare, 4, i, 20);
        let coop = x2_bps(CoordinationMode::Cooperative, 4, i, 20);
        assert_eq!(indep, 0.0);
        assert!(fair > 0.0);
        assert!(coop > fair, "measurements cost extra");
    }

    #[test]
    fn known_value() {
        // FairShare, 1 peer, 1 s interval: 96 B × 8 = 768 bit/s.
        let bps = x2_bps(CoordinationMode::FairShare, 1, SimDuration::from_secs(1), 0);
        assert!((bps - 768.0).abs() < 1e-9);
    }

    #[test]
    fn x2_is_tiny_versus_user_plane() {
        // Even cooperative mode with 10 peers, 50 clients at 100 ms
        // reporting is under 1 Mbit/s — the paper's low-bandwidth claim.
        let bps = x2_bps(
            CoordinationMode::Cooperative,
            10,
            SimDuration::from_millis(100),
            50,
        );
        assert!(bps < 1e6, "{bps}");
    }

    #[test]
    fn budget_keeps_mode_when_it_fits() {
        let plan = plan_for_budget(
            CoordinationMode::Cooperative,
            4,
            20,
            SimDuration::from_millis(100),
            SimDuration::from_secs(10),
            1e6,
        );
        assert_eq!(plan.mode, CoordinationMode::Cooperative);
        assert_eq!(plan.report_interval, SimDuration::from_millis(100));
    }

    #[test]
    fn budget_stretches_interval_before_dropping_mode() {
        // ~29 kbit/s at 100 ms; budget of 5 kbit/s forces a longer interval
        // but cooperative should survive.
        let plan = plan_for_budget(
            CoordinationMode::Cooperative,
            4,
            20,
            SimDuration::from_millis(100),
            SimDuration::from_secs(10),
            5_000.0,
        );
        assert_eq!(plan.mode, CoordinationMode::Cooperative);
        assert!(plan.report_interval > SimDuration::from_millis(100));
        assert!(plan.bps <= 5_000.0);
    }

    #[test]
    fn starvation_budget_degrades_to_independent() {
        let plan = plan_for_budget(
            CoordinationMode::Cooperative,
            10,
            100,
            SimDuration::from_millis(100),
            SimDuration::from_secs(1),
            1.0, // one bit per second
        );
        assert_eq!(plan.mode, CoordinationMode::Independent);
        assert_eq!(plan.bps, 0.0);
    }

    #[test]
    fn zero_peers_is_free() {
        assert_eq!(
            x2_bps(
                CoordinationMode::Cooperative,
                0,
                SimDuration::from_secs(1),
                9
            ),
            0.0
        );
    }
}
