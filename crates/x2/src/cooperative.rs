//! Cooperative mode: fuse the resources of neighboring APs.
//!
//! §4.3: cooperation enables *"client handoff across the APs, QoS aware
//! joint flow scheduling between APs, and the assignment of the best AP to
//! serve each client device."* These are pure decision functions — the
//! event-level execution (actual handoffs, schedules) is carried out by the
//! MAC/EPC layers that consume their output.

use serde::{Deserialize, Serialize};

/// Per-client view across APs: `sinr_db[a]` is the client's SINR to AP `a`
/// (negative infinity if unreachable).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClientMeasurement {
    pub client: u64,
    pub sinr_db: Vec<f64>,
}

/// Assignment of clients to APs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// `ap_of[i]` = AP index serving client `i` of the input slice.
    pub ap_of: Vec<usize>,
    /// Clients per AP.
    pub load: Vec<u32>,
}

/// Greedy best-AP assignment: each client to its strongest AP.
pub fn best_ap_assignment(clients: &[ClientMeasurement], n_aps: usize) -> Assignment {
    let mut ap_of = Vec::with_capacity(clients.len());
    let mut load = vec![0u32; n_aps];
    for c in clients {
        assert_eq!(c.sinr_db.len(), n_aps, "measurement width mismatch");
        let best = c
            .sinr_db
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN SINR"))
            .map(|(i, _)| i)
            .unwrap_or(0);
        ap_of.push(best);
        load[best] += 1;
    }
    Assignment { ap_of, load }
}

/// Load-balanced assignment: start from best-AP, then migrate clients whose
/// SINR sacrifice is below `max_sacrifice_db` from the most- to the
/// least-loaded AP until loads differ by at most one (or no migration
/// qualifies). This is the "QoS aware" refinement: throughput is roughly
/// log-like in SINR, so a few dB sacrificed by an edge client buys a big
/// scheduling-share gain on the underloaded AP.
pub fn load_balanced_assignment(
    clients: &[ClientMeasurement],
    n_aps: usize,
    max_sacrifice_db: f64,
) -> Assignment {
    let mut a = best_ap_assignment(clients, n_aps);
    if n_aps < 2 {
        return a;
    }
    loop {
        let (hi, lo) = {
            let hi = (0..n_aps).max_by_key(|&i| a.load[i]).unwrap();
            let lo = (0..n_aps).min_by_key(|&i| a.load[i]).unwrap();
            (hi, lo)
        };
        if a.load[hi] <= a.load[lo] + 1 {
            break;
        }
        // Cheapest migratable client on the overloaded AP.
        let candidate = clients
            .iter()
            .enumerate()
            .filter(|(i, _)| a.ap_of[*i] == hi)
            .map(|(i, c)| (i, c.sinr_db[hi] - c.sinr_db[lo]))
            .filter(|&(_, sacrifice)| sacrifice <= max_sacrifice_db)
            .min_by(|x, y| x.1.partial_cmp(&y.1).expect("NaN"));
        match candidate {
            Some((i, _)) => {
                a.ap_of[i] = lo;
                a.load[hi] -= 1;
                a.load[lo] += 1;
            }
            None => break,
        }
    }
    a
}

/// Which clients must hand off when moving from `current` to `target`
/// assignment: `(client index, from AP, to AP)`.
pub fn handoff_plan(current: &Assignment, target: &Assignment) -> Vec<(usize, usize, usize)> {
    assert_eq!(current.ap_of.len(), target.ap_of.len());
    current
        .ap_of
        .iter()
        .zip(target.ap_of.iter())
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, (&a, &b))| (i, a, b))
        .collect()
}

/// Expected proportional-fair utility (Σ log throughput) of an assignment,
/// using `log2(1+snr)` as the rate proxy and equal intra-AP sharing — the
/// objective cooperative mode improves. Useful for tests and the E7 bench.
pub fn pf_utility(clients: &[ClientMeasurement], a: &Assignment) -> f64 {
    clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let ap = a.ap_of[i];
            let rate = (1.0 + 10f64.powf(c.sinr_db[ap] / 10.0)).log2();
            let share = 1.0 / a.load[ap].max(1) as f64;
            (rate * share).max(1e-12).ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(client: u64, sinrs: &[f64]) -> ClientMeasurement {
        ClientMeasurement {
            client,
            sinr_db: sinrs.to_vec(),
        }
    }

    #[test]
    fn best_ap_picks_strongest() {
        let clients = vec![c(0, &[20.0, 5.0]), c(1, &[3.0, 18.0]), c(2, &[10.0, 10.5])];
        let a = best_ap_assignment(&clients, 2);
        assert_eq!(a.ap_of, vec![0, 1, 1]);
        assert_eq!(a.load, vec![1, 2]);
    }

    #[test]
    fn load_balancing_moves_cheap_clients() {
        // Four clients all slightly prefer AP0; best-AP loads it 4:0, but
        // three of them lose only 1 dB by moving.
        let clients = vec![
            c(0, &[20.0, 19.0]),
            c(1, &[18.0, 17.0]),
            c(2, &[16.0, 15.0]),
            c(3, &[25.0, 5.0]), // this one genuinely needs AP0
        ];
        let best = best_ap_assignment(&clients, 2);
        assert_eq!(best.load, vec![4, 0]);
        let balanced = load_balanced_assignment(&clients, 2, 3.0);
        assert_eq!(balanced.load, vec![2, 2]);
        // Client 3 stays on AP0 (sacrifice 20 dB > 3 dB threshold).
        assert_eq!(balanced.ap_of[3], 0);
        // And the PF utility improves.
        assert!(pf_utility(&clients, &balanced) > pf_utility(&clients, &best));
    }

    #[test]
    fn balancing_respects_sacrifice_cap() {
        // Every client strongly prefers AP0: no migration qualifies.
        let clients = vec![c(0, &[20.0, 0.0]), c(1, &[20.0, 0.0]), c(2, &[20.0, 0.0])];
        let a = load_balanced_assignment(&clients, 2, 3.0);
        assert_eq!(a.load, vec![3, 0], "no one sacrifices 20 dB");
    }

    #[test]
    fn handoff_plan_diffs_assignments() {
        let cur = Assignment {
            ap_of: vec![0, 0, 1],
            load: vec![2, 1],
        };
        let tgt = Assignment {
            ap_of: vec![0, 1, 1],
            load: vec![1, 2],
        };
        let plan = handoff_plan(&cur, &tgt);
        assert_eq!(plan, vec![(1, 0, 1)]);
    }

    #[test]
    fn single_ap_is_trivial() {
        let clients = vec![c(0, &[10.0]), c(1, &[5.0])];
        let a = load_balanced_assignment(&clients, 1, 3.0);
        assert_eq!(a.ap_of, vec![0, 0]);
    }

    #[test]
    fn pf_utility_prefers_spreading_equal_clients() {
        let clients = vec![
            c(0, &[15.0, 15.0]),
            c(1, &[15.0, 15.0]),
            c(2, &[15.0, 15.0]),
            c(3, &[15.0, 15.0]),
        ];
        let packed = Assignment {
            ap_of: vec![0, 0, 0, 0],
            load: vec![4, 0],
        };
        let spread = Assignment {
            ap_of: vec![0, 0, 1, 1],
            load: vec![2, 2],
        };
        assert!(pf_utility(&clients, &spread) > pf_utility(&clients, &packed));
    }
}
