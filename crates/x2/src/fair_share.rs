//! The fair-sharing computation.
//!
//! §4.3: in fair-sharing mode the APs *"programmatically coordinate the
//! bare minimum of fair time-frequency sharing of the underlying RF
//! resource... more efficiently achieving an equilibrium with similar
//! fairness characteristics to what WiFi achieves today."*
//!
//! The partition is **max-min fair** (progressive filling): every AP gets
//! its demand if that demand is below the equal share; leftover capacity is
//! redistributed among the still-hungry. This dominates WiFi's DCF outcome
//! on two axes: no airtime is burned on collisions/backoff, and an AP with
//! low demand automatically donates its slack — DCF only approximates the
//! second and pays contention overhead for the first.

/// Max-min fair shares of `total` given per-AP `demands` (same units).
///
/// Properties (property-tested):
/// * Σ shares ≤ total, with equality iff Σ demands ≥ total;
/// * share_i ≤ demand_i;
/// * any AP that does not receive its full demand receives at least as much
///   as every other AP (the max-min property).
pub fn max_min_shares(demands: &[f64], total: f64) -> Vec<f64> {
    let mut shares = Vec::new();
    let mut unsatisfied = Vec::new();
    max_min_shares_into(demands, total, &mut shares, &mut unsatisfied);
    shares
}

/// [`max_min_shares`] writing into caller-owned buffers — the X2 agent
/// recomputes its share on every report tick (and once per peer during the
/// setup storm), so the hot path reuses its scratch vectors instead of
/// allocating three fresh ones per call. `shares` is cleared and refilled;
/// `unsatisfied` is pure scratch with no meaningful contents afterwards.
pub fn max_min_shares_into(
    demands: &[f64],
    total: f64,
    shares: &mut Vec<f64>,
    unsatisfied: &mut Vec<usize>,
) {
    let n = demands.len();
    shares.clear();
    unsatisfied.clear();
    if n == 0 {
        return;
    }
    assert!(total >= 0.0);
    assert!(
        demands.iter().all(|&d| d >= 0.0 && d.is_finite()),
        "demands must be finite and non-negative"
    );
    shares.resize(n, 0.0f64);
    unsatisfied.extend(0..n);
    let mut remaining = total;
    loop {
        // Everyone satisfied or nothing left: done.
        if unsatisfied.is_empty() || remaining <= 1e-15 {
            break;
        }
        let equal = remaining / unsatisfied.len() as f64;
        // Satisfy everyone whose residual demand fits under the equal share.
        let mut progressed = false;
        unsatisfied.retain(|&i| {
            let residual = demands[i] - shares[i];
            if residual <= equal + 1e-15 {
                shares[i] += residual;
                remaining -= residual;
                progressed = true;
                false
            } else {
                true
            }
        });
        if !progressed {
            // No one fits: split the remainder equally and finish.
            for &i in unsatisfied.iter() {
                shares[i] += equal;
            }
            break;
        }
    }
}

/// Weighted proportional shares (e.g. by client count) of `total`, capped
/// at each AP's demand, with iterative redistribution of slack.
pub fn weighted_shares(demands: &[f64], weights: &[f64], total: f64) -> Vec<f64> {
    assert_eq!(demands.len(), weights.len());
    let n = demands.len();
    if n == 0 {
        return Vec::new();
    }
    let mut shares = vec![0.0f64; n];
    let mut open: Vec<usize> = (0..n).collect();
    let mut remaining = total;
    while !open.is_empty() && remaining > 1e-15 {
        let wsum: f64 = open.iter().map(|&i| weights[i].max(1e-12)).sum();
        let mut newly_closed = Vec::new();
        for &i in &open {
            let offer = remaining * weights[i].max(1e-12) / wsum;
            let residual = demands[i] - shares[i];
            if residual <= offer + 1e-15 {
                newly_closed.push(i);
            }
        }
        if newly_closed.is_empty() {
            // Everyone can absorb their offer: final split.
            for &i in &open {
                let offer = remaining * weights[i].max(1e-12) / wsum;
                shares[i] += offer;
            }
            break;
        }
        for i in newly_closed {
            let residual = demands[i] - shares[i];
            shares[i] = demands[i];
            remaining -= residual;
            open.retain(|&j| j != i);
        }
    }
    shares
}

/// The equilibrium an N-station WiFi DCF network reaches on the same
/// resource, for comparison in E5: equal shares, but with the contention
/// efficiency factor `eta(n)` burned (collisions + backoff). `eta` is the
/// standard Bianchi-flavoured saturation efficiency, here as the simple
/// fitted form `eta(n) = eta1 * (1 - c)^(n-1)` with per-station collision
/// pressure `c`.
pub fn wifi_equivalent_shares(n: usize, total: f64, eta1: f64, c: f64) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    let eta = eta1 * (1.0 - c).powi(n as i32 - 1);
    vec![total * eta / n as f64; n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn equal_demands_split_equally() {
        let s = max_min_shares(&[1.0, 1.0, 1.0, 1.0], 1.0);
        assert!(s.iter().all(|&x| close(x, 0.25)), "{s:?}");
    }

    #[test]
    fn light_user_donates_slack() {
        // AP 0 only wants 10%; the other two split the rest.
        let s = max_min_shares(&[0.1, 1.0, 1.0], 1.0);
        assert!(close(s[0], 0.1));
        assert!(close(s[1], 0.45));
        assert!(close(s[2], 0.45));
    }

    #[test]
    fn undersubscribed_channel_satisfies_everyone() {
        let s = max_min_shares(&[0.2, 0.3, 0.1], 1.0);
        assert!(close(s[0], 0.2) && close(s[1], 0.3) && close(s[2], 0.1));
        assert!(s.iter().sum::<f64>() < 1.0);
    }

    #[test]
    fn cascading_redistribution() {
        // Demands 0.05, 0.15, 1.0, 1.0 of total 1.0:
        // round 1 equal=0.25 → first two satisfied (0.05+0.15);
        // remaining 0.8 over two → 0.4 each.
        let s = max_min_shares(&[0.05, 0.15, 1.0, 1.0], 1.0);
        assert!(close(s[0], 0.05) && close(s[1], 0.15));
        assert!(close(s[2], 0.4) && close(s[3], 0.4));
    }

    #[test]
    fn empty_and_zero_cases() {
        assert!(max_min_shares(&[], 1.0).is_empty());
        let s = max_min_shares(&[0.0, 0.0], 1.0);
        assert!(close(s[0], 0.0) && close(s[1], 0.0));
        let s = max_min_shares(&[1.0, 1.0], 0.0);
        assert!(close(s[0], 0.0) && close(s[1], 0.0));
    }

    #[test]
    fn weighted_by_clients() {
        // AP 1 has 3× the clients; both saturated.
        let s = weighted_shares(&[1.0, 1.0], &[1.0, 3.0], 1.0);
        assert!(close(s[0], 0.25), "{s:?}");
        assert!(close(s[1], 0.75));
    }

    #[test]
    fn weighted_respects_demand_caps() {
        // Heavy-weight AP only wants 0.2: cap binds, light AP takes rest.
        let s = weighted_shares(&[1.0, 0.2], &[1.0, 3.0], 1.0);
        assert!(close(s[1], 0.2), "{s:?}");
        assert!(close(s[0], 0.8), "{s:?}");
    }

    #[test]
    fn fair_share_beats_wifi_equivalent_aggregate() {
        // The E5 headline: same channel, n saturated APs. dLTE fair share
        // delivers the whole channel; DCF burns eta.
        for n in [2usize, 5, 10] {
            let dlte: f64 = max_min_shares(&vec![1.0; n], 1.0).iter().sum();
            let wifi: f64 = wifi_equivalent_shares(n, 1.0, 0.85, 0.07).iter().sum();
            assert!(close(dlte, 1.0));
            assert!(wifi < dlte, "n={n}: wifi {wifi} vs dlte {dlte}");
        }
    }
}
