//! # dlte-x2 — peer-to-peer coordination between access points
//!
//! §4.3: *"dLTE access points establish connections with their neighboring
//! APs via a standardized protocol over the Internet backhaul"* — an X2-AP
//! dialect *"extended with information about the dLTE operating mode and
//! dLTE peer status."* This crate implements that protocol and the two
//! coordination behaviours the paper defines:
//!
//! * **Fair-sharing mode** ([`fair_share`]): APs programmatically agree on
//!   the *"bare minimum of fair time-frequency sharing"* — a max-min
//!   (water-filling) partition of the shared channel driven by exchanged
//!   demand reports;
//! * **Cooperative mode** ([`cooperative`]): APs *"optimize for maximum
//!   joint RF performance"* — best-AP client assignment, coordinated
//!   handoff, and joint scheduling inputs.
//!
//! [`peer::X2Agent`] is the wire-level agent (a [`dlte_net::NodeHandler`])
//! that exchanges periodic load/status messages with its contention-domain
//! peers (discovered from the [`dlte_registry`] registry), tracks peer
//! liveness, and exposes the negotiated share. [`bandwidth`] accounts the
//! X2 overhead (experiment E11; cf. La Roche & Widjaja's X2 sizing \[28\]).

pub mod bandwidth;
pub mod cooperative;
pub mod fair_share;
pub mod messages;
pub mod peer;
pub mod son;

pub use fair_share::{max_min_shares, weighted_shares};
pub use messages::{CoordinationMode, X2Msg};
pub use peer::{X2Agent, X2AgentStats};
