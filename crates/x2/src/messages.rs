//! X2-AP message vocabulary with dLTE extensions.

use dlte_net::Addr;
use serde::{Deserialize, Serialize};

/// Operating mode of a dLTE AP (the paper's §4.3 switch, the only manual
/// knob an AP owner sets).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CoordinationMode {
    /// Legacy-WiFi-like: no coordination at all.
    Independent,
    /// Programmatic fair time-frequency sharing.
    FairShare,
    /// Fused resources: joint scheduling, handoff, best-AP assignment.
    Cooperative,
}

/// dLTE peer status carried in the X2 extension IE.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct DlteStatus {
    pub mode: CoordinationMode,
    /// Long-run demand for the shared channel, in \[0,1\] (fraction of
    /// airtime this AP could usefully consume).
    pub demand: f64,
    /// Number of attached clients (cooperative-mode load balancing input).
    pub clients: u32,
}

/// X2 messages. Sizes in [`wire`] keep the backhaul accounting honest.
#[derive(Clone, Debug)]
pub enum X2Msg {
    /// Association setup (carries the initial dLTE status).
    SetupRequest {
        from: Addr,
        status: DlteStatus,
    },
    SetupResponse {
        from: Addr,
        status: DlteStatus,
    },
    /// Periodic load/status report (3GPP LOAD INFORMATION + dLTE IE).
    LoadInformation {
        from: Addr,
        status: DlteStatus,
    },
    /// Cooperative mode: per-client measurement snapshot so peers can run
    /// best-AP assignment. `(client id, SINR dB to the sender)`.
    MeasurementReport {
        from: Addr,
        reports: Vec<(u64, f64)>,
    },
    /// Cooperative handoff of a client to the receiving AP — and, in the
    /// dLTE mobility extension, a context *fetch*: the sender is an AP a
    /// roaming client just arrived at, asking whether the receiver holds
    /// the client's subscriber context.
    HandoverRequest {
        from: Addr,
        client: u64,
    },
    HandoverAck {
        from: Addr,
        client: u64,
    },
    /// Reply to a [`X2Msg::HandoverRequest`] context fetch: the client's
    /// subscriber key material (`None` = not known here) and the highest
    /// SQN the sender used, so the new AP never regresses the counter into
    /// a resync cycle. Replaces the wide-area directory round trip with a
    /// neighbor hop.
    HandoverContext {
        from: Addr,
        client: u64,
        key: Option<u128>,
        sqn: u64,
    },
}

/// On-wire message sizes, bytes (SCTP/X2AP framing + IEs; measurement
/// reports add per-client payload).
pub mod wire {
    pub const SETUP: u32 = 120;
    pub const LOAD_INFORMATION: u32 = 96;
    pub const MEASUREMENT_BASE: u32 = 64;
    pub const MEASUREMENT_PER_CLIENT: u32 = 12;
    pub const HANDOVER: u32 = 180;
    /// Handover context reply (framing + key material + SQN IEs).
    pub const HANDOVER_CONTEXT: u32 = 220;

    /// Size of a measurement report with `n` clients.
    pub fn measurement(n: usize) -> u32 {
        MEASUREMENT_BASE + MEASUREMENT_PER_CLIENT * n as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_size_scales() {
        assert_eq!(wire::measurement(0), 64);
        assert_eq!(wire::measurement(10), 64 + 120);
    }

    #[test]
    fn modes_are_ordered_by_coupling() {
        // Sanity: the three modes exist and are distinct.
        let modes = [
            CoordinationMode::Independent,
            CoordinationMode::FairShare,
            CoordinationMode::Cooperative,
        ];
        for i in 0..modes.len() {
            for j in (i + 1)..modes.len() {
                assert_ne!(modes[i], modes[j]);
            }
        }
    }
}
