//! The X2 agent: the wire-level peer of every dLTE AP.
//!
//! Runs over the Internet backhaul as a [`NodeHandler`] co-resident with the
//! AP's local core (the `dlte` crate composes them). Behaviour:
//!
//! * on start, sends `SetupRequest` to each configured peer (discovered out
//!   of band from the registry's contention domain);
//! * every `report_interval`, sends `LoadInformation` with the current dLTE
//!   status (mode, demand, client count), plus measurement reports in
//!   cooperative mode;
//! * tracks peer liveness (3 missed reports → peer dropped — organic churn
//!   is normal in an open network);
//! * recomputes its own share with [`crate::fair_share::max_min_shares`]
//!   over the latest known demands;
//! * accounts every byte sent (experiment E11).

use crate::fair_share::{max_min_shares, max_min_shares_into};
use crate::messages::{wire, CoordinationMode, DlteStatus, X2Msg};
use dlte_net::{Addr, NodeCtx, NodeHandler, Packet, Payload};
use dlte_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Liveness: a peer is evicted from the table after this many silent
/// intervals. Eviction is deliberately lazy (organic churn is normal in an
/// open network); *freshness* — used for the live-peer count, the share
/// computation, and handover targeting — is judged against a single missed
/// report instead, so a crashed neighbor stops being a handover target (and
/// stops holding spectrum) within one report interval, not three.
const LIVENESS_INTERVALS: u32 = 3;

const TAG_TICK: u64 = 7_000_000;

#[derive(Clone, Debug)]
struct PeerState {
    status: DlteStatus,
    last_seen: SimTime,
}

/// X2 agent statistics.
#[derive(Clone, Debug, Default)]
pub struct X2AgentStats {
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_received: u64,
    pub peers_dropped: u64,
}

/// The agent.
pub struct X2Agent {
    pub mode: CoordinationMode,
    pub report_interval: SimDuration,
    /// My own demand in \[0,1\]; the AP updates this as its load changes.
    pub my_demand: f64,
    pub my_clients: u32,
    peers: Vec<Addr>,
    peer_state: HashMap<Addr, PeerState>,
    /// Negotiated share of the channel in \[0,1\].
    pub my_share: f64,
    /// Latest per-client SINR snapshot to advertise in cooperative mode.
    pub my_measurements: Vec<(u64, f64)>,
    /// Peers' latest measurement reports (cooperative mode input).
    pub peer_measurements: HashMap<Addr, Vec<(u64, f64)>>,
    /// Latest event time this agent processed; freshness is judged against
    /// this, not wall-clock polling, so it is meaningful right after any
    /// message or tick.
    last_now: SimTime,
    pub stats: X2AgentStats,
    /// Scratch buffers for [`Self::recompute_share`]. The share is
    /// recomputed every report tick and once per peer during the setup
    /// storm; reusing these keeps the steady state (and the storm)
    /// allocation-free instead of growing four fresh vectors per call.
    scratch_addrs: Vec<Addr>,
    scratch_demands: Vec<f64>,
    scratch_shares: Vec<f64>,
    scratch_unsat: Vec<usize>,
}

impl X2Agent {
    pub fn new(mode: CoordinationMode, peers: Vec<Addr>, report_interval: SimDuration) -> Self {
        X2Agent {
            mode,
            report_interval,
            my_demand: 1.0,
            my_clients: 0,
            peers,
            peer_state: HashMap::new(),
            my_share: 1.0,
            my_measurements: Vec::new(),
            peer_measurements: HashMap::new(),
            last_now: SimTime::ZERO,
            stats: X2AgentStats::default(),
            scratch_addrs: Vec::new(),
            scratch_demands: Vec::new(),
            scratch_shares: Vec::new(),
            scratch_unsat: Vec::new(),
        }
    }

    fn my_status(&self) -> DlteStatus {
        DlteStatus {
            mode: self.mode,
            demand: self.my_demand,
            clients: self.my_clients,
        }
    }

    /// A peer is fresh if its last report is within 1¼ report intervals of
    /// the latest event this agent processed (one interval of silence plus
    /// delivery jitter). A crashed peer therefore stops counting within one
    /// interval, long before the 3-interval table eviction.
    fn is_fresh(&self, last_seen: SimTime) -> bool {
        let deadline = self.report_interval + self.report_interval / 4;
        self.last_now.saturating_since(last_seen) <= deadline
    }

    /// Current live (fresh) peers.
    pub fn live_peers(&self) -> usize {
        self.peer_state
            .values()
            .filter(|p| self.is_fresh(p.last_seen))
            .count()
    }

    /// Fresh peers in deterministic (sorted) order — the only peers worth
    /// targeting with a handover or context fetch: anything staler has
    /// missed a report and may be crashed or partitioned away.
    pub fn fresh_peers(&self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = self
            .peer_state
            .iter()
            .filter(|(_, p)| self.is_fresh(p.last_seen))
            .map(|(&a, _)| a)
            .collect();
        addrs.sort();
        addrs
    }

    /// Send an X2 message to a peer on behalf of the composing AP (keeps
    /// the E11 byte accounting honest for AP-level extensions like the
    /// mobility context fetch).
    pub fn send_to_peer(&mut self, ctx: &mut NodeCtx<'_>, to: Addr, msg: X2Msg, size: u32) {
        self.send(ctx, to, msg, size);
    }

    fn send(&mut self, ctx: &mut NodeCtx<'_>, to: Addr, msg: X2Msg, size: u32) {
        self.send_payload(ctx, to, Payload::control(msg), size);
    }

    /// Send a pre-built payload. Broadcast paths (the tick report) build one
    /// `Payload::control` and clone it per peer — an `Arc` refcount bump
    /// instead of a fresh allocation per recipient.
    fn send_payload(&mut self, ctx: &mut NodeCtx<'_>, to: Addr, payload: Payload, size: u32) {
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += size as u64;
        let p = ctx.make_packet(to, size).with_payload(payload);
        ctx.forward(p);
    }

    fn recompute_share(&mut self) {
        if self.mode == CoordinationMode::Independent {
            self.my_share = 1.0; // uncoordinated: everyone just transmits
            return;
        }
        if dlte_net::naive_memory() {
            // The baseline re-enacts the historical fresh-vectors-per-call
            // behavior so the bench can price the scratch reuse below.
            let mut demands = vec![self.my_demand];
            for a in self.fresh_peers() {
                demands.push(self.peer_state[&a].status.demand);
            }
            self.my_share = max_min_shares(&demands, 1.0)[0];
            return;
        }
        // My demand first, then fresh peers in deterministic order. Stale
        // peers are excluded: a crashed AP must not keep holding spectrum
        // for up to three intervals until its table entry is evicted.
        // Freshness is inlined (rather than calling `fresh_peers`) so the
        // scratch buffers can be filled without borrowing `self` twice.
        let deadline = self.report_interval + self.report_interval / 4;
        let last_now = self.last_now;
        self.scratch_addrs.clear();
        self.scratch_addrs.extend(
            self.peer_state
                .iter()
                .filter(|(_, p)| last_now.saturating_since(p.last_seen) <= deadline)
                .map(|(&a, _)| a),
        );
        self.scratch_addrs.sort();
        self.scratch_demands.clear();
        self.scratch_demands.push(self.my_demand);
        for i in 0..self.scratch_addrs.len() {
            let a = self.scratch_addrs[i];
            self.scratch_demands.push(self.peer_state[&a].status.demand);
        }
        max_min_shares_into(
            &self.scratch_demands,
            1.0,
            &mut self.scratch_shares,
            &mut self.scratch_unsat,
        );
        self.my_share = self.scratch_shares[0];
    }

    fn tick(&mut self, ctx: &mut NodeCtx<'_>) {
        self.last_now = ctx.now;
        // Drop silent peers.
        let deadline = self.report_interval * LIVENESS_INTERVALS as u64;
        let now = ctx.now;
        let before = self.peer_state.len();
        self.peer_state
            .retain(|_, p| now.saturating_since(p.last_seen) <= deadline);
        let dropped = before - self.peer_state.len();
        self.stats.peers_dropped += dropped as u64;
        // Report to every configured peer. The report is identical for all
        // of them, so the ~full-mesh broadcast shares one `Arc`'d payload and
        // bumps its refcount per peer — in a 100-AP mesh that is 1 control
        // allocation per tick instead of 99. The naive-memory baseline
        // re-enacts the historical allocation per recipient so the bench can
        // price the difference.
        let status = self.my_status();
        let my_addr = ctx.my_addr();
        let load = Payload::control(X2Msg::LoadInformation {
            from: my_addr,
            status,
        });
        let meas = if self.mode == CoordinationMode::Cooperative && !self.my_measurements.is_empty()
        {
            let reports = self.my_measurements.clone();
            let size = wire::measurement(reports.len());
            Some((
                Payload::control(X2Msg::MeasurementReport {
                    from: my_addr,
                    reports,
                }),
                size,
            ))
        } else {
            None
        };
        for i in 0..self.peers.len() {
            let peer = self.peers[i];
            let pl = if dlte_net::naive_memory() {
                Payload::control(X2Msg::LoadInformation {
                    from: my_addr,
                    status,
                })
            } else {
                load.clone()
            };
            self.send_payload(ctx, peer, pl, wire::LOAD_INFORMATION);
            if let Some((pl, size)) = &meas {
                let pl = if dlte_net::naive_memory() {
                    Payload::control(X2Msg::MeasurementReport {
                        from: my_addr,
                        reports: self.my_measurements.clone(),
                    })
                } else {
                    pl.clone()
                };
                self.send_payload(ctx, peer, pl, *size);
            }
        }
        self.recompute_share();
        let interval = self.report_interval;
        ctx.set_timer(interval, TAG_TICK);
    }

    fn handle_msg(&mut self, ctx: &mut NodeCtx<'_>, msg: X2Msg) {
        self.last_now = ctx.now;
        self.stats.msgs_received += 1;
        match msg {
            X2Msg::SetupRequest { from, status } => {
                self.peer_state.insert(
                    from,
                    PeerState {
                        status,
                        last_seen: ctx.now,
                    },
                );
                let my = self.my_status();
                let my_addr = ctx.my_addr();
                self.send(
                    ctx,
                    from,
                    X2Msg::SetupResponse {
                        from: my_addr,
                        status: my,
                    },
                    wire::SETUP,
                );
                self.recompute_share();
            }
            X2Msg::SetupResponse { from, status } | X2Msg::LoadInformation { from, status } => {
                let prev = self.peer_state.insert(
                    from,
                    PeerState {
                        status,
                        last_seen: ctx.now,
                    },
                );
                // Steady-state reports dominate X2 traffic (every peer, every
                // interval). A report that neither adds a peer, changes its
                // advertised status, nor revives it from staleness cannot
                // move the fair share — my own demand only changes under the
                // tick, which recomputes unconditionally — so the
                // O(peers log peers) recompute is skipped for them. With n
                // APs this turns each interval's share maintenance from n²
                // recomputes into n.
                if prev.is_none_or(|p| p.status != status || !self.is_fresh(p.last_seen)) {
                    self.recompute_share();
                }
            }
            X2Msg::MeasurementReport { from, reports } => {
                self.peer_measurements.insert(from, reports);
            }
            X2Msg::HandoverRequest { from, client } => {
                let my_addr = ctx.my_addr();
                self.send(
                    ctx,
                    from,
                    X2Msg::HandoverAck {
                        from: my_addr,
                        client,
                    },
                    wire::HANDOVER,
                );
            }
            X2Msg::HandoverAck { .. } => {}
            // Context replies are consumed by the composing AP (which
            // intercepts them before this handler); a bare agent has no
            // subscriber store to install them into.
            X2Msg::HandoverContext { .. } => {}
        }
    }
}

impl NodeHandler for X2Agent {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // The setup storm is a full-mesh broadcast of one identical message;
        // share its payload like the tick report does (with n APs this is n
        // control allocations at startup instead of n²).
        let status = self.my_status();
        let my_addr = ctx.my_addr();
        let setup = Payload::control(X2Msg::SetupRequest {
            from: my_addr,
            status,
        });
        for i in 0..self.peers.len() {
            let peer = self.peers[i];
            let pl = if dlte_net::naive_memory() {
                Payload::control(X2Msg::SetupRequest {
                    from: my_addr,
                    status,
                })
            } else {
                setup.clone()
            };
            self.send_payload(ctx, peer, pl, wire::SETUP);
        }
        let interval = self.report_interval;
        ctx.set_timer(interval, TAG_TICK);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tag: u64) {
        if tag == TAG_TICK {
            self.tick(ctx);
        }
    }

    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, packet: Packet) {
        if let Some(msg) = packet.payload.as_control::<X2Msg>().cloned() {
            self.handle_msg(ctx, msg);
        } else if ctx.peer_info(ctx.node).owns(packet.dst) {
            ctx.deliver_local(&packet);
        } else {
            ctx.forward(packet);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_net::{LinkConfig, NetworkBuilder, Prefix};

    /// Two agents across a WAN link; returns the built sim and node ids.
    fn two_agents(
        mode: CoordinationMode,
        demand_a: f64,
        demand_b: f64,
    ) -> (dlte_sim::Simulation<dlte_net::Network>, usize, usize) {
        let mut b = NetworkBuilder::new(9);
        let addr_a = Addr::new(10, 0, 0, 1);
        let addr_b = Addr::new(10, 0, 0, 2);
        let mut agent_a = X2Agent::new(mode, vec![addr_b], SimDuration::from_millis(100));
        agent_a.my_demand = demand_a;
        let mut agent_b = X2Agent::new(mode, vec![addr_a], SimDuration::from_millis(100));
        agent_b.my_demand = demand_b;
        let a = b.host("ap-a", Box::new(agent_a));
        b.addr(a, addr_a);
        let bb = b.host("ap-b", Box::new(agent_b));
        b.addr(bb, addr_b);
        let l = b.link(a, bb, LinkConfig::wan(SimDuration::from_millis(20)));
        b.route(a, Prefix::new(addr_b, 32), l);
        b.route(bb, Prefix::new(addr_a, 32), l);
        (b.build(), a, bb)
    }

    #[test]
    fn agents_converge_to_fair_split() {
        let (mut sim, a, b) = two_agents(CoordinationMode::FairShare, 1.0, 1.0);
        sim.run_until(SimTime::from_secs(2), 1_000_000);
        let w = sim.world();
        let xa = w.handler_as::<X2Agent>(a).unwrap();
        let xb = w.handler_as::<X2Agent>(b).unwrap();
        assert!((xa.my_share - 0.5).abs() < 1e-9, "a share {}", xa.my_share);
        assert!((xb.my_share - 0.5).abs() < 1e-9);
        assert_eq!(xa.live_peers(), 1);
    }

    #[test]
    fn asymmetric_demand_shares_water_fill() {
        let (mut sim, a, b) = two_agents(CoordinationMode::FairShare, 0.2, 1.0);
        sim.run_until(SimTime::from_secs(2), 1_000_000);
        let w = sim.world();
        let xa = w.handler_as::<X2Agent>(a).unwrap();
        let xb = w.handler_as::<X2Agent>(b).unwrap();
        assert!((xa.my_share - 0.2).abs() < 1e-9);
        assert!((xb.my_share - 0.8).abs() < 1e-9, "b gets the slack");
    }

    #[test]
    fn independent_mode_ignores_peers() {
        let (mut sim, a, _) = two_agents(CoordinationMode::Independent, 1.0, 1.0);
        sim.run_until(SimTime::from_secs(1), 1_000_000);
        let xa = sim.world().handler_as::<X2Agent>(a).unwrap();
        assert_eq!(xa.my_share, 1.0);
    }

    #[test]
    fn x2_traffic_is_low_bandwidth() {
        // §4.3: "The X2 interface is relatively low bandwidth."
        let (mut sim, a, _) = two_agents(CoordinationMode::FairShare, 1.0, 1.0);
        sim.run_until(SimTime::from_secs(10), 2_000_000);
        let xa = sim.world().handler_as::<X2Agent>(a).unwrap();
        let bps = xa.stats.bytes_sent as f64 * 8.0 / 10.0;
        assert!(bps < 20_000.0, "X2 at {bps} bit/s should be ≪ user traffic");
        assert!(xa.stats.msgs_sent >= 90, "reports flowed");
    }

    #[test]
    fn dead_peer_is_dropped_and_share_recovers() {
        // Build agent A pointed at a peer address that never answers.
        let mut b = NetworkBuilder::new(11);
        let addr_a = Addr::new(10, 0, 0, 1);
        let addr_ghost = Addr::new(10, 0, 0, 99);
        let mut agent = X2Agent::new(
            CoordinationMode::FairShare,
            vec![addr_ghost],
            SimDuration::from_millis(100),
        );
        // Seed a phantom peer entry as if it had been alive once.
        agent.peer_state.insert(
            addr_ghost,
            PeerState {
                status: DlteStatus {
                    mode: CoordinationMode::FairShare,
                    demand: 1.0,
                    clients: 0,
                },
                last_seen: SimTime::ZERO,
            },
        );
        agent.recompute_share();
        assert!((agent.my_share - 0.5).abs() < 1e-9, "initially shared");
        let a = b.host("ap-a", Box::new(agent));
        b.addr(a, addr_a);
        // No route to the ghost: sends fail silently (drops_no_route).
        let mut sim = b.build();
        sim.run_until(SimTime::from_secs(2), 1_000_000);
        let xa = sim.world().handler_as::<X2Agent>(a).unwrap();
        assert_eq!(xa.live_peers(), 0, "ghost dropped after 3 intervals");
        assert_eq!(xa.my_share, 1.0, "spectrum reclaimed");
        assert_eq!(xa.stats.peers_dropped, 1);
    }

    #[test]
    fn stale_peer_stops_counting_within_one_interval() {
        // A crashed peer must leave the live set (and the share math, and
        // the handover target list) after one missed report — not linger
        // until the 3-interval table eviction.
        let mut agent = X2Agent::new(
            CoordinationMode::FairShare,
            vec![],
            SimDuration::from_millis(100),
        );
        let peer = Addr::new(10, 0, 0, 2);
        agent.peer_state.insert(
            peer,
            PeerState {
                status: DlteStatus {
                    mode: CoordinationMode::FairShare,
                    demand: 1.0,
                    clients: 0,
                },
                last_seen: SimTime::ZERO,
            },
        );
        // One interval of silence (plus jitter allowance) is tolerated...
        agent.last_now = SimTime::from_millis(100);
        assert_eq!(agent.live_peers(), 1);
        assert_eq!(agent.fresh_peers(), vec![peer]);
        // ...but a missed report is not.
        agent.last_now = SimTime::from_millis(130);
        assert_eq!(agent.live_peers(), 0, "stale within ~one interval");
        assert!(
            agent.fresh_peers().is_empty(),
            "no longer a handover target"
        );
        agent.recompute_share();
        assert_eq!(agent.my_share, 1.0, "stale peer holds no spectrum");
        // Table eviction stays lazy: the entry (and the dropped-peer stat)
        // waits for the 3-interval deadline.
        assert_eq!(agent.peer_state.len(), 1);
        assert_eq!(agent.stats.peers_dropped, 0);
    }

    #[test]
    fn cooperative_mode_exchanges_measurements() {
        let (mut sim, a, b) = two_agents(CoordinationMode::Cooperative, 1.0, 1.0);
        // Give A some client measurements before running.
        sim.world_mut()
            .handler_as_mut::<X2Agent>(a)
            .unwrap()
            .my_measurements = vec![(1, 17.0), (2, 9.5)];
        sim.run_until(SimTime::from_secs(1), 1_000_000);
        let w = sim.world();
        let xb = w.handler_as::<X2Agent>(b).unwrap();
        let got = xb
            .peer_measurements
            .get(&Addr::new(10, 0, 0, 1))
            .expect("B holds A's measurements");
        assert_eq!(got, &vec![(1, 17.0), (2, 9.5)]);
    }
}
