//! Self-organizing-network helpers.
//!
//! §4.3: *"We do not attempt to make a contribution to the theory of self
//! organizing networks in LTE, but rather seek to provide an operational
//! model to apply it across administrative domains."* Accordingly this
//! module operationalizes two standard SON functions on top of the open
//! registry:
//!
//! * **Automatic neighbor relations** — derive the X2 peer list from the
//!   registry's contention domain instead of UE-reported ANR;
//! * **Mobility robustness** — tune the handover hysteresis margin from
//!   observed ping-pong and too-late-handover counts (the classic MRO
//!   feedback rule \[24\]).

use dlte_registry::{LicenseGrant, SpectrumRegistry};
use dlte_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Derive the X2 neighbor list for `me` from the registry: co-channel
/// overlapping grants, sorted by distance (closest first — the most
/// important peers when the list must be truncated for backhaul budget).
pub fn neighbor_relations(
    registry: &SpectrumRegistry,
    me: &LicenseGrant,
    now: SimTime,
) -> Vec<LicenseGrant> {
    let mut peers = registry.contention_domain(me, now);
    peers.sort_by(|a, b| {
        let da = a.location.distance_km(me.location);
        let db = b.location.distance_km(me.location);
        da.partial_cmp(&db)
            .expect("distance NaN")
            .then(a.id.cmp(&b.id))
    });
    peers
}

/// Mobility-robustness state: adapts the handover hysteresis margin.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MobilityRobustness {
    /// Current hysteresis margin, dB. A UE hands over when the target cell
    /// is better than the serving cell by at least this margin.
    pub hysteresis_db: f64,
    pub min_db: f64,
    pub max_db: f64,
    /// Adaptation step.
    pub step_db: f64,
    pub ping_pongs: u64,
    pub too_late: u64,
}

impl Default for MobilityRobustness {
    fn default() -> Self {
        MobilityRobustness {
            hysteresis_db: 3.0,
            min_db: 0.5,
            max_db: 10.0,
            step_db: 0.5,
            ping_pongs: 0,
            too_late: 0,
        }
    }
}

impl MobilityRobustness {
    /// Report a ping-pong (handover bounced straight back): margin too low.
    pub fn report_ping_pong(&mut self) {
        self.ping_pongs += 1;
        self.hysteresis_db = (self.hysteresis_db + self.step_db).min(self.max_db);
    }

    /// Report a too-late handover (radio link failure before HO): margin
    /// too high.
    pub fn report_too_late(&mut self) {
        self.too_late += 1;
        self.hysteresis_db = (self.hysteresis_db - self.step_db).max(self.min_db);
    }

    /// Should a UE hand over, given serving and target SINR (dB)?
    pub fn should_hand_over(&self, serving_db: f64, target_db: f64) -> bool {
        target_db >= serving_db + self.hysteresis_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlte_phy::band::Band;
    use dlte_registry::{ChannelPlan, GrantRequest, Point};
    use dlte_sim::SimDuration;

    fn reg_with_grants(xs: &[f64]) -> (SpectrumRegistry, Vec<LicenseGrant>) {
        let mut r = SpectrumRegistry::new(ChannelPlan::for_band(Band::band5(), 10.0), 55.0);
        let grants = xs
            .iter()
            .map(|&x| {
                r.request(
                    GrantRequest {
                        operator: 1,
                        location: Point::new(x, 0.0),
                        channel: Some(0),
                        max_eirp_dbm: 50.0,
                        contour_km: 10.0,
                        lease: SimDuration::from_secs(3600),
                    },
                    SimTime::ZERO,
                )
                .unwrap()
            })
            .collect();
        (r, grants)
    }

    #[test]
    fn anr_sorted_by_distance() {
        let (r, g) = reg_with_grants(&[0.0, 12.0, 5.0, 100.0]);
        let peers = neighbor_relations(&r, &g[0], SimTime::ZERO);
        // 100 km away is out of contention (contours 10+10=20 km).
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[0].id, g[2].id, "5 km peer first");
        assert_eq!(peers[1].id, g[1].id);
    }

    #[test]
    fn mro_raises_margin_on_ping_pong() {
        let mut mro = MobilityRobustness::default();
        let before = mro.hysteresis_db;
        mro.report_ping_pong();
        assert!(mro.hysteresis_db > before);
        for _ in 0..100 {
            mro.report_ping_pong();
        }
        assert_eq!(mro.hysteresis_db, mro.max_db, "clamped");
    }

    #[test]
    fn mro_lowers_margin_on_too_late() {
        let mut mro = MobilityRobustness::default();
        for _ in 0..100 {
            mro.report_too_late();
        }
        assert_eq!(mro.hysteresis_db, mro.min_db, "clamped");
    }

    #[test]
    fn handover_decision_uses_margin() {
        let mro = MobilityRobustness::default(); // 3 dB
        assert!(!mro.should_hand_over(10.0, 12.0));
        assert!(mro.should_hand_over(10.0, 13.0));
    }
}
