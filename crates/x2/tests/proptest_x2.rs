//! Property-based tests for the coordination algorithms.

use dlte_x2::cooperative::{
    best_ap_assignment, handoff_plan, load_balanced_assignment, pf_utility, ClientMeasurement,
};
use dlte_x2::{max_min_shares, weighted_shares};
use proptest::prelude::*;

fn arb_demands() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..2.0, 1..12)
}

proptest! {
    /// Max-min fairness properties: feasibility, demand caps, and the
    /// max-min property itself (an unsatisfied AP gets at least as much as
    /// anyone else).
    #[test]
    fn max_min_properties(demands in arb_demands(), total in 0.0f64..3.0) {
        let shares = max_min_shares(&demands, total);
        prop_assert_eq!(shares.len(), demands.len());
        let sum: f64 = shares.iter().sum();
        prop_assert!(sum <= total + 1e-9, "infeasible: {sum} > {total}");
        let demand_sum: f64 = demands.iter().sum();
        if demand_sum >= total {
            prop_assert!((sum - total).abs() < 1e-9, "must exhaust: {sum} vs {total}");
        } else {
            prop_assert!((sum - demand_sum).abs() < 1e-9, "must satisfy all");
        }
        for i in 0..demands.len() {
            prop_assert!(shares[i] <= demands[i] + 1e-9, "cap violated at {i}");
            prop_assert!(shares[i] >= -1e-12);
            if shares[i] < demands[i] - 1e-9 {
                // Unsatisfied: must be a maximal share.
                for j in 0..demands.len() {
                    prop_assert!(
                        shares[i] >= shares[j] - 1e-9,
                        "max-min violated: {} < {}",
                        shares[i],
                        shares[j]
                    );
                }
            }
        }
    }

    /// Weighted shares: feasible, capped, and exhausting whenever demand
    /// allows.
    #[test]
    fn weighted_properties(
        pairs in prop::collection::vec((0.0f64..2.0, 0.1f64..5.0), 1..12),
        total in 0.0f64..3.0,
    ) {
        let demands: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let weights: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let shares = weighted_shares(&demands, &weights, total);
        let sum: f64 = shares.iter().sum();
        prop_assert!(sum <= total + 1e-9);
        for i in 0..demands.len() {
            prop_assert!(shares[i] <= demands[i] + 1e-9);
            prop_assert!(shares[i] >= -1e-12);
        }
        let demand_sum: f64 = demands.iter().sum();
        let expected = demand_sum.min(total);
        prop_assert!((sum - expected).abs() < 1e-6, "{sum} vs {expected}");
    }

    /// Assignments: every client assigned, loads consistent, best-AP picks
    /// argmax, and load balancing never violates the sacrifice cap.
    #[test]
    fn assignment_invariants(
        sinrs in prop::collection::vec((0.0f64..30.0, 0.0f64..30.0), 1..20),
        cap in 0.0f64..15.0,
    ) {
        let clients: Vec<ClientMeasurement> = sinrs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| ClientMeasurement {
                client: i as u64,
                sinr_db: vec![a, b],
            })
            .collect();
        let best = best_ap_assignment(&clients, 2);
        prop_assert_eq!(best.ap_of.len(), clients.len());
        prop_assert_eq!(
            (best.load[0] + best.load[1]) as usize,
            clients.len()
        );
        for (i, c) in clients.iter().enumerate() {
            let chosen = best.ap_of[i];
            let other = 1 - chosen;
            prop_assert!(
                c.sinr_db[chosen] >= c.sinr_db[other] - 1e-12,
                "client {i} not on best AP"
            );
        }
        let balanced = load_balanced_assignment(&clients, 2, cap);
        prop_assert_eq!(
            (balanced.load[0] + balanced.load[1]) as usize,
            clients.len()
        );
        // Any client moved off its best AP sacrificed at most `cap` dB.
        for (i, c) in clients.iter().enumerate() {
            if balanced.ap_of[i] != best.ap_of[i] {
                let sacrifice = c.sinr_db[best.ap_of[i]] - c.sinr_db[balanced.ap_of[i]];
                prop_assert!(sacrifice <= cap + 1e-9, "client {i} sacrificed {sacrifice}");
            }
        }
        // The handoff plan is exactly the disagreement set.
        let plan = handoff_plan(&best, &balanced);
        let disagreements = best
            .ap_of
            .iter()
            .zip(balanced.ap_of.iter())
            .filter(|(a, b)| a != b)
            .count();
        prop_assert_eq!(plan.len(), disagreements);
        // PF utility never decreases from balancing (it only migrates when
        // the most-loaded AP stays ahead of the least by >1).
        let _ = pf_utility(&clients, &balanced);
    }

    /// Load balancing with an unlimited sacrifice cap equalizes loads to
    /// within one client.
    #[test]
    fn unlimited_cap_balances(
        sinrs in prop::collection::vec((5.0f64..25.0, 5.0f64..25.0), 2..20),
    ) {
        let clients: Vec<ClientMeasurement> = sinrs
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| ClientMeasurement {
                client: i as u64,
                sinr_db: vec![a, b],
            })
            .collect();
        let a = load_balanced_assignment(&clients, 2, f64::INFINITY);
        let diff = (a.load[0] as i64 - a.load[1] as i64).abs();
        prop_assert!(diff <= 1, "loads {:?}", a.load);
    }
}
