//! Emergency backhaul redundancy — the paper's §7 future-work idea, live.
//!
//! Two village APs share a mesh link. Mid-run, AP0's backhaul is cut
//! (storm, backhoe, VSAT outage). Watch AP0 detect the failure with its
//! beacon probes and re-point its egress through AP1, while the wide-area
//! routing reconverges the return path.
//!
//! ```sh
//! cargo run --release --example backhaul_outage
//! ```

use dlte::resilience::{Action, FailureScript};
use dlte::scenario::{DlteNetworkBuilder, DltePlan};
use dlte::DlteApNode;
use dlte_epc::ue::{UeApp, UeNode};
use dlte_net::Prefix;
use dlte_sim::{SimDuration, SimTime};

fn main() {
    let mut b = DlteNetworkBuilder::new(2, 1);
    b.mesh = true; // provision the inter-AP link + failover (§7)
    let mut net = b
        .with_ue_plan(|_| DltePlan {
            app: UeApp::Pinger {
                dst: DlteNetworkBuilder::ott_addr(),
                interval: SimDuration::from_millis(100),
                probe_bytes: 100,
            },
            ..Default::default()
        })
        .build();

    // The fault: AP0's backhaul dies at t=5 s; the regional IGP reconverges
    // the downlink toward AP0's pool two seconds later.
    let ap0_addr = net.sim.world().core.nodes[net.aps[0]].addrs()[0];
    let fail = SimTime::from_secs(5);
    let reconverge = SimTime::from_secs(7);
    let actions = vec![
        (
            fail,
            Action::SetLink {
                link: net.ap_backhaul[0],
                up: false,
            },
        ),
        (
            reconverge,
            Action::SetRoute {
                node: net.r_agg,
                prefix: DlteNetworkBuilder::ap_pool(0),
                link: net.ap_backhaul[1],
            },
        ),
        (
            reconverge,
            Action::SetRoute {
                node: net.aps[1],
                prefix: DlteNetworkBuilder::ap_pool(0),
                link: net.ap_mesh[0],
            },
        ),
        (
            reconverge,
            Action::SetRoute {
                node: net.r_agg,
                prefix: Prefix::new(ap0_addr, 32),
                link: net.ap_backhaul[1],
            },
        ),
        (
            reconverge,
            Action::SetRoute {
                node: net.aps[1],
                prefix: Prefix::new(ap0_addr, 32),
                link: net.ap_mesh[0],
            },
        ),
    ];
    net.sim
        .world_mut()
        .set_handler(net.chaos, Box::new(FailureScript::new(actions)));

    println!("t=5s: AP0's backhaul will be cut. Watching the client on AP0…\n");
    let mut last_pongs = 0;
    for second in 1..=15u64 {
        net.sim.run_until(SimTime::from_secs(second), 100_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        let ap0 = w.handler_as::<DlteApNode>(net.aps[0]).unwrap();
        let rate = ue.stats.pongs - last_pongs;
        last_pongs = ue.stats.pongs;
        let status = match (second, ap0.failover.as_ref().map(|f| f.failed_over)) {
            (..=5, _) => "backhaul up",
            (_, Some(true)) => "FAILED OVER via mesh",
            _ => "backhaul DOWN, probing…",
        };
        println!("  t={second:>2}s  pongs this second: {rate:>2}/10   [{status}]");
    }
    let w = net.sim.world();
    let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
    let ap0 = w.handler_as::<DlteApNode>(net.aps[0]).unwrap();
    let fo = ap0.failover.as_ref().unwrap();
    println!(
        "\nfailover at {} (probe deadline after the cut); total pongs {}/150",
        fo.failed_over_at
            .map(|t| t.to_string())
            .unwrap_or_else(|| "never".into()),
        ue.stats.pongs
    );
    println!(
        "\n§7: mesh links \"could provide redundancy for users in emergencies\nwhen the backhaul link goes down\" — outage bounded, service restored."
    );
}
