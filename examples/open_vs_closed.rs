//! Open core vs closed core, measured: the same town served by a
//! centralized carrier EPC and by federated dLTE APs.
//!
//! Reproduces the contrast of the paper's Figure 1 and Table 1 as numbers:
//! where control lives, where packets go, what both cost in milliseconds —
//! and what happens when a new AP wants to join each network.
//!
//! ```sh
//! cargo run --release --example open_vs_closed
//! ```

use dlte::design_space::render_table;
use dlte::experiments::f1_architecture;
use dlte_phy::band::Band;
use dlte_registry::{ChannelPlan, GrantRequest, Point, SpectrumRegistry};
use dlte_sim::{SimDuration, SimTime};

fn main() {
    println!("== Table 1: the design space ==\n{}", render_table());

    println!("== Figure 1, measured (same geometry, same workload) ==\n");
    let table = f1_architecture::run();
    println!("{table}");

    println!("== Joining the network ==\n");
    // Closed core: only the operator can add eNodeBs; a villager with an
    // eNodeB and backhaul has no protocol-level path in. (Nothing to run:
    // the MME simply has no procedure for it — that's the point.)
    println!("centralized LTE: a new AP needs the carrier's blessing — no protocol exists for");
    println!("                 an outsider's eNodeB to join the EPC. (§2.1: \"closed to organic");
    println!("                 expansion\")\n");

    // Open core: the registry takes anyone who conforms.
    let mut registry = SpectrumRegistry::new(ChannelPlan::for_band(Band::band5(), 10.0), 55.0);
    let mut join = |who: &str, x_km: f64| {
        let grant = registry
            .request(
                GrantRequest {
                    operator: who.len() as u64, // any identity will do
                    location: Point::new(x_km, 0.0),
                    channel: None,
                    max_eirp_dbm: 50.0,
                    contour_km: 10.0,
                    lease: SimDuration::from_secs(86_400),
                },
                SimTime::ZERO,
            )
            .expect("the registry is open");
        let peers = registry.contention_domain(&grant, SimTime::ZERO);
        println!(
            "dLTE: \"{who}\" joins at {x_km:>4.1} km → grant #{} on channel {}, {} peer(s) to coordinate with over X2",
            grant.id,
            grant.channel,
            peers.len()
        );
        grant
    };
    join("the school", 0.0);
    join("the clinic", 4.0);
    join("farm co-op", 7.0);
    join("neighboring village", 18.0);
    println!(
        "\n{} grants active; nobody asked a carrier. (§4.3: \"new APs are free to join at",
        registry.active_count(SimTime::ZERO)
    );
    println!("any time, and coordinate with existing nodes\")");
}
