//! Quickstart: stand up a dLTE access point, attach a stock UE with a
//! published key, and exchange traffic with an Internet service.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dlte::scenario::{DlteNetworkBuilder, DltePlan};
use dlte::DlteApNode;
use dlte_epc::ue::{UeApp, UeNode};
use dlte_sim::{SimDuration, SimTime};

fn main() {
    // One AP, one UE. The UE's key is pre-published to the open directory;
    // the AP's local core authenticates it with the standard EPS-AKA
    // handshake — no carrier, no shared EPC.
    let mut net = DlteNetworkBuilder::new(1, 1)
        .with_ue_plan(|_| DltePlan {
            app: UeApp::Pinger {
                dst: DlteNetworkBuilder::ott_addr(),
                interval: SimDuration::from_millis(100),
                probe_bytes: 100,
            },
            ..Default::default()
        })
        .build();

    println!("running 10 simulated seconds…\n");
    net.sim.run_until(SimTime::from_secs(10), 10_000_000);

    let world = net.sim.world();
    let ue = world.handler_as::<UeNode>(net.ues[0]).expect("ue");
    let ap = world.handler_as::<DlteApNode>(net.aps[0]).expect("ap");

    println!("UE state ............ {:?}", ue.state);
    println!(
        "address ............. {} (from the AP's own pool)",
        ue.addr.expect("attached")
    );
    println!(
        "attach latency ...... {:.1} ms (all control stayed at the AP)",
        ue.stats.attach_latency_ms.values()[0]
    );
    println!(
        "echo RTT to 8.8.8.8 . median {:.1} ms over {} pongs (local breakout — no EPC detour)",
        ue.stats.rtt_ms.median(),
        ue.stats.pongs
    );
    println!(
        "AP sessions ......... {} (attach handled by the local core stub)",
        ap.core.active_sessions()
    );
    println!(
        "AP user packets ..... {} up / {} down, all forwarded as native IP",
        ap.core.stats.ul_user_packets, ap.core.stats.dl_user_packets
    );
}
