//! Roaming across independently owned dLTE APs: the §4.2 mobility story.
//!
//! A client walks between two APs run by different owners. Each time it
//! arrives it gets a *new address* from that AP's pool — and its modern
//! transport connection (connection IDs + 0-RTT + FEC) just keeps going.
//!
//! ```sh
//! cargo run --release --example roaming_client
//! ```

use dlte::scenario::{DlteNetworkBuilder, DltePlan};
use dlte::TransportUeApp;
use dlte_epc::ue::{MobilityMode, UeApp, UeNode};
use dlte_sim::SimTime;
use dlte_transport::connection::TransportConfig;

fn main() {
    let mut builder = DlteNetworkBuilder::new(2, 1);
    builder.wire_all_cells = true;
    // The client hops AP0 → AP1 → AP0 → AP1, dwelling 4 s each.
    let schedule = vec![
        (SimTime::from_secs(4), 1),
        (SimTime::from_secs(8), 0),
        (SimTime::from_secs(12), 1),
    ];
    let mut net = builder
        .with_ue_plan(move |i| DltePlan {
            app: if i == 0 {
                UeApp::Upper(Box::new(TransportUeApp::new(
                    TransportConfig::modern(),
                    DlteNetworkBuilder::ott_transport_addr(),
                )))
            } else {
                UeApp::None
            },
            mode: MobilityMode::ReAttach,
            schedule: if i == 0 { schedule.clone() } else { vec![] },
        })
        .build();

    println!("client uploads continuously while hopping APs every 4 s…\n");
    net.sim.run_until(SimTime::from_secs(16), 100_000_000);

    let world = net.sim.world();
    let ue = world.handler_as::<UeNode>(net.ues[0]).unwrap();
    let app = ue.upper_as::<TransportUeApp>().unwrap();

    println!(
        "attaches completed .... {} (one per AP visit)",
        ue.stats.attaches_completed
    );
    println!(
        "current address ....... {} (pool of the AP it's on *now*)",
        ue.addr.expect("attached")
    );
    println!(
        "transport handshakes .. {} — the connection ID survived every address change",
        app.conn.handshakes
    );
    println!(
        "bytes acknowledged .... {:.1} MB over the whole walk",
        app.conn.acked_bytes() as f64 / 1e6
    );
    print!("resume after each hop . ");
    for v in app.resume_ms.values() {
        print!("{v:.0} ms  ");
    }
    println!();
    println!(
        "\nNo MME moved any tunnel. The endpoints handled it — \"service\ncontinuity [left] to endpoint transport and application layers\" (§4.2)."
    );
}
