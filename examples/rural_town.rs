//! The paper's §5 deployment, in simulation: one band-5 site on the town
//! gym covering the whole town, for under $8,000 in materials.
//!
//! Walks three layers of the reproduction:
//! 1. the bill of materials and coverage economics (Figure 2 / §5);
//! 2. the radio: per-household goodput across the town from the
//!    subframe-accurate cell simulator;
//! 3. the network: the town's UEs attaching to the AP's local core and
//!    using the Internet, data-only with OTT services (as deployed).
//!
//! ```sh
//! cargo run --release --example rural_town
//! ```

use dlte::econ::Deployment;
use dlte::scenario::{DlteNetworkBuilder, DltePlan};
use dlte_epc::ue::{UeApp, UeNode};
use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_sim::{SimDuration, SimRng, SimTime};

fn main() {
    // --- 1. What the site costs and what it covers -----------------------
    let site = Deployment::DlteSite;
    println!("== the site (paper §5) ==");
    for item in site.bom() {
        println!(
            "  {:<32} {:>2} × ${:<8.0} = ${:.0}",
            item.name,
            item.quantity,
            item.unit_usd,
            item.total()
        );
    }
    println!(
        "  total ${:.0} (paper: \"less than $8000 in materials\")",
        site.capex_usd()
    );
    println!(
        "  coverage radius {:.1} km → {:.0} km² from one gym roof\n",
        site.coverage_radius_km(),
        site.coverage_area_km2()
    );

    // --- 2. The radio across the town ------------------------------------
    println!("== per-household goodput (band 5, 10 MHz, rural terrain) ==");
    let distances = [0.2, 0.5, 1.0, 2.0, 3.5, 5.0, 8.0];
    let rng = SimRng::new(42);
    let ues: Vec<UeConfig> = distances.iter().map(|&d| UeConfig::at_km(d)).collect();
    let mut cell = CellSim::new(CellConfig::rural_default(), ues, &rng);
    let report = cell.run(SimDuration::from_secs(2));
    for (i, ue) in report.ues.iter().enumerate() {
        println!(
            "  household at {:>4.1} km: {:>6.2} Mbit/s (mean CQI {:.1})",
            distances[i],
            ue.goodput_bps / 1e6,
            ue.mean_cqi
        );
    }
    println!(
        "  cell aggregate {:.1} Mbit/s shared proportional-fair\n",
        report.aggregate_goodput_bps / 1e6
    );

    // --- 3. The network: data-only, OTT services -------------------------
    println!("== the town online (20 UEs attach; WhatsApp-style echo traffic) ==");
    let mut net = DlteNetworkBuilder::new(1, 20)
        .with_ue_plan(|_| DltePlan {
            app: UeApp::Pinger {
                dst: DlteNetworkBuilder::ott_addr(),
                interval: SimDuration::from_millis(500),
                probe_bytes: 300,
            },
            ..Default::default()
        })
        .build();
    net.sim.run_until(SimTime::from_secs(15), 50_000_000);
    let world = net.sim.world();
    let mut attached = 0;
    let mut attach_ms = dlte_sim::stats::Samples::new();
    let mut rtt_ms = dlte_sim::stats::Samples::new();
    for &ue_id in &net.ues {
        let ue = world.handler_as::<UeNode>(ue_id).unwrap();
        if ue.addr.is_some() {
            attached += 1;
        }
        for &v in ue.stats.attach_latency_ms.values() {
            attach_ms.push(v);
        }
        for &v in ue.stats.rtt_ms.values() {
            rtt_ms.push(v);
        }
    }
    println!("  attached ............ {attached}/20");
    println!("  attach latency ...... mean {:.1} ms", attach_ms.mean());
    println!(
        "  OTT RTT ............. median {:.1} ms / p95 {:.1} ms",
        rtt_ms.median(),
        rtt_ms.p95()
    );
    println!("\nOne site, one stub core, no carrier. That's the dLTE pitch.");
}
