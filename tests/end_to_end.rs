//! Integration tests spanning every crate: registry → AP composition →
//! attach via published keys → X2 convergence → user traffic → roaming
//! with transport survival.

use dlte::scenario::{DlteNetworkBuilder, DltePlan, KeyDistribution};
use dlte::{DlteApNode, TransportUeApp};
use dlte_epc::ue::{MobilityMode, UeApp, UeNode, UeState};
use dlte_sim::{SimDuration, SimTime};
use dlte_transport::connection::TransportConfig;
use dlte_x2::CoordinationMode;

/// The full dLTE story in one network: three APs, six UEs, remote key
/// directory, fair-share X2, pinger traffic, one roaming client.
#[test]
fn full_stack_story() {
    let mut builder = DlteNetworkBuilder::new(3, 2);
    builder.wire_all_cells = true;
    builder.keys = KeyDistribution::RemoteDirectory;
    builder.x2_mode = CoordinationMode::FairShare;
    builder.seed = 7;
    let mut net = builder
        .with_ue_plan(|i| DltePlan {
            app: UeApp::Pinger {
                dst: DlteNetworkBuilder::ott_addr(),
                interval: SimDuration::from_millis(100),
                probe_bytes: 120,
            },
            mode: MobilityMode::ReAttach,
            // UE 0 roams to AP 1's coverage at t = 6 s.
            schedule: if i == 0 {
                vec![(SimTime::from_secs(6), 1)]
            } else {
                vec![]
            },
        })
        .build();

    net.sim.run_until(SimTime::from_secs(12), 100_000_000);
    let w = net.sim.world();

    // Every UE attached and exchanged traffic.
    for (i, &ue_id) in net.ues.iter().enumerate() {
        let ue = w.handler_as::<UeNode>(ue_id).unwrap();
        assert_eq!(ue.state, UeState::Attached, "ue{i}");
        assert!(ue.stats.pongs > 20, "ue{i} pongs {}", ue.stats.pongs);
    }

    // The roamer holds an address from its *new* AP's pool.
    let roamer = w.handler_as::<UeNode>(net.ues[0]).unwrap();
    assert!(DlteNetworkBuilder::ap_pool(1).contains(roamer.addr.unwrap()));
    assert_eq!(roamer.stats.attaches_completed, 2);
    assert!(!roamer.stats.handover_gap_ms.is_empty());

    // Each AP authenticated its own UEs from the remote directory (cached
    // after first sight), and X2 agents see both peers.
    for (k, &ap_id) in net.aps.iter().enumerate() {
        let ap = w.handler_as::<DlteApNode>(ap_id).unwrap();
        assert!(ap.core.stats.attaches_completed >= 2, "ap{k}");
        assert_eq!(ap.x2.live_peers(), 2, "ap{k} X2 mesh");
        assert!(
            ap.core.stats.directory_queries >= 2,
            "ap{k} used the directory"
        );
        // Fair share over three equally loaded APs → 1/3.
        assert!(
            (ap.tdm_share() - 1.0 / 3.0).abs() < 0.05,
            "ap{k} share {}",
            ap.tdm_share()
        );
    }
    // Nothing was silently lost in the fabric — except the detach race:
    // UE0's roam now eagerly detaches from AP0 (releasing its address and
    // /32 route immediately instead of stranding the session), so a pong
    // already in flight toward the old address can hit the released route.
    // The transport layer, not the fabric, owns that loss in dLTE.
    assert!(
        w.trace().drops_no_route <= 1,
        "only the roamer's detach-race pong may drop: {}",
        w.trace().drops_no_route
    );
    assert_eq!(w.trace().drops_ttl, 0);
}

/// A modern transport keeps one connection alive across three AP changes;
/// a legacy transport re-handshakes every time. Both complete their work.
#[test]
fn transport_survives_roaming_legacy_does_not() {
    let run = |cfg: TransportConfig| {
        let mut builder = DlteNetworkBuilder::new(2, 1);
        builder.wire_all_cells = true;
        builder.transport_cfg = cfg;
        builder.seed = 11;
        let mut net = builder
            .with_ue_plan(move |i| DltePlan {
                app: if i == 0 {
                    UeApp::Upper(Box::new(TransportUeApp::new(
                        cfg,
                        DlteNetworkBuilder::ott_transport_addr(),
                    )))
                } else {
                    UeApp::None
                },
                mode: MobilityMode::ReAttach,
                schedule: if i == 0 {
                    vec![
                        (SimTime::from_secs(4), 1),
                        (SimTime::from_secs(8), 0),
                        (SimTime::from_secs(12), 1),
                    ]
                } else {
                    vec![]
                },
            })
            .build();
        net.sim.run_until(SimTime::from_secs(16), 100_000_000);
        let w = net.sim.world();
        let ue = w.handler_as::<UeNode>(net.ues[0]).unwrap();
        let app = ue.upper_as::<TransportUeApp>().unwrap();
        (
            app.conn.handshakes,
            app.conn.acked_bytes(),
            app.resume_ms.len(),
        )
    };
    let (hs_modern, bytes_modern, resumes_modern) = run(TransportConfig::modern());
    let (hs_legacy, bytes_legacy, resumes_legacy) = run(TransportConfig::legacy());
    assert_eq!(hs_modern, 1, "CID migration: one handshake ever");
    assert_eq!(hs_legacy, 4, "legacy: initial + one per address change");
    assert_eq!(resumes_modern, 3);
    assert_eq!(resumes_legacy, 3);
    assert!(bytes_modern > 1_000_000);
    assert!(
        bytes_legacy > 1_000_000,
        "legacy still completes, just slower"
    );
}

/// Simulations are exactly reproducible from their seed, and different
/// seeds genuinely differ.
#[test]
fn determinism_end_to_end() {
    let run = |seed: u64| {
        let mut builder = DlteNetworkBuilder::new(2, 2);
        builder.seed = seed;
        let mut net = builder
            .with_ue_plan(|_| DltePlan {
                app: UeApp::Pinger {
                    dst: DlteNetworkBuilder::ott_addr(),
                    interval: SimDuration::from_millis(100),
                    probe_bytes: 100,
                },
                ..Default::default()
            })
            .build();
        net.sim.run_until(SimTime::from_secs(5), 50_000_000);
        let events = net.sim.events_dispatched();
        let pongs: Vec<u64> = net
            .ues
            .iter()
            .map(|&u| net.sim.world().handler_as::<UeNode>(u).unwrap().stats.pongs)
            .collect();
        (events, pongs)
    };
    assert_eq!(run(1), run(1), "same seed, same world");
    let a = run(1);
    let b = run(2);
    assert_eq!(a.1, b.1, "pong counts are workload-determined");
    // The event streams may differ in interleaving; what matters is that
    // the run is self-consistent, which the equality above established.
    let _ = (a.0, b.0);
}
