//! Cross-model consistency checks: the subframe simulator, the closed-form
//! PHY math, and the packet-level substrate must tell one coherent story.
//! These guard against the classic multi-fidelity trap — two models of the
//! same thing silently drifting apart.

use dlte_mac::{CellConfig, CellSim, UeConfig};
use dlte_phy::harq::{HarqConfig, HarqProcessModel};
use dlte_phy::link::{LinkBudget, RadioConfig};
use dlte_phy::mcs::{peak_throughput_bps, select_cqi};
use dlte_phy::propagation::PathLossModel;
use dlte_sim::{SimDuration, SimRng};

/// The cell simulator's single-UE goodput must agree with the closed-form
/// prediction (CQI table × HARQ efficiency) at every distance: the TTI loop
/// is the closed form plus scheduling, nothing else.
#[test]
fn cell_sim_matches_closed_form() {
    let cfg = CellConfig::rural_default();
    let budget = LinkBudget {
        tx: cfg.enb,
        rx: RadioConfig::lte_handset(),
        model: cfg.path_loss,
        freq_mhz: cfg.freq_mhz,
        bandwidth_hz: cfg.bandwidth.occupied_hz(),
    };
    let harq = HarqProcessModel::new(HarqConfig::default());
    for dist_km in [0.5, 2.0, 5.0, 10.0, 15.0] {
        let snr = budget.snr_db(dist_km, 0.0);
        let expected = match select_cqi(snr) {
            Some(cqi) => {
                peak_throughput_bps(cqi, cfg.bandwidth.n_prb) * harq.stats(snr, cqi).efficiency
            }
            None => 0.0,
        };
        let rng = SimRng::new(7);
        let mut sim = CellSim::new(cfg.clone(), vec![UeConfig::at_km(dist_km)], &rng);
        let measured = sim.run(SimDuration::from_millis(500)).ues[0].goodput_bps;
        let tol = (expected * 0.02).max(50_000.0);
        assert!(
            (measured - expected).abs() <= tol,
            "{dist_km} km: sim {measured:.0} vs closed form {expected:.0}"
        );
    }
}

/// TDM shares compose linearly: a cell at share s delivers s × the
/// full-share goodput, across the share range (the assumption E5/E6/E7
/// lean on).
#[test]
fn tdm_share_linearity() {
    let full = {
        let rng = SimRng::new(3);
        let mut sim = CellSim::new(
            CellConfig::rural_default(),
            vec![UeConfig::at_km(1.0)],
            &rng,
        );
        sim.run(SimDuration::from_secs(2)).ues[0].goodput_bps
    };
    for share in [0.25, 0.5, 0.75] {
        let mut cfg = CellConfig::rural_default();
        cfg.tdm_share = share;
        let rng = SimRng::new(3);
        let mut sim = CellSim::new(cfg, vec![UeConfig::at_km(1.0)], &rng);
        let got = sim.run(SimDuration::from_secs(2)).ues[0].goodput_bps;
        let ratio = got / full;
        assert!((ratio - share).abs() < 0.01, "share {share}: ratio {ratio}");
    }
}

/// The uplink/downlink asymmetry is consistent between the link budget and
/// the cell simulator: wherever the budget says the uplink dies first, the
/// simulator agrees.
#[test]
fn uplink_downlink_asymmetry_consistent() {
    use dlte_mac::lte::cell::Direction;
    use dlte_phy::band::Band;
    use dlte_phy::mcs::CQI_TABLE;

    let dl_budget = LinkBudget {
        tx: RadioConfig::rural_enodeb(),
        rx: RadioConfig::lte_handset(),
        model: PathLossModel::rural_macro(),
        freq_mhz: Band::band5().downlink_center_mhz(),
        bandwidth_hz: 10e6,
    };
    let ul_budget = LinkBudget {
        tx: RadioConfig::lte_handset(),
        rx: RadioConfig::rural_enodeb(),
        model: PathLossModel::rural_macro(),
        freq_mhz: Band::band5().uplink_center_mhz(),
        bandwidth_hz: 10e6,
    };
    let edge = CQI_TABLE[0].sinr_threshold_db;
    let dl_range = dl_budget.range_km(edge);
    let ul_range = ul_budget.range_km(edge);
    assert!(ul_range < dl_range, "uplink must be limiting");

    // A UE between the two ranges: downlink works, uplink dead — in both
    // the budget and the simulator.
    let between = (ul_range + dl_range) / 2.0;
    let run_dir = |direction: Direction| {
        let mut cfg = CellConfig::rural_default();
        cfg.direction = direction;
        if direction == Direction::Uplink {
            cfg.freq_mhz = Band::band5().uplink_center_mhz();
        }
        let rng = SimRng::new(5);
        let mut sim = CellSim::new(cfg, vec![UeConfig::at_km(between)], &rng);
        sim.run(SimDuration::from_millis(300)).ues[0].goodput_bps
    };
    assert!(
        run_dir(Direction::Downlink) > 0.0,
        "downlink alive at {between:.1} km"
    );
    assert_eq!(
        run_dir(Direction::Uplink),
        0.0,
        "uplink dead at {between:.1} km"
    );
}

/// The packet substrate's delivered latency equals the sum of link delays
/// plus serialization — checked against hand arithmetic on a 3-hop path
/// (guards the queueing model against drift).
#[test]
fn packet_latency_is_sum_of_parts() {
    use dlte_net::handlers::CbrSource;
    use dlte_net::{Addr, LinkConfig, NetworkBuilder};
    use dlte_sim::SimTime;

    let mut b = NetworkBuilder::new(9);
    let dst_addr = Addr::new(10, 0, 0, 9);
    // 1000-byte packets, 10 pkt/s (no queueing).
    let src = b.host("src", Box::new(CbrSource::new(dst_addr, 1, 80_000.0, 1000)));
    b.addr(src, Addr::new(10, 0, 0, 1));
    let r = b.node("r");
    let dst = b.node("dst");
    b.addr(dst, dst_addr);
    let mk = |delay_ms: u64, mbps: f64| LinkConfig {
        delay: SimDuration::from_millis(delay_ms),
        rate_bps: mbps * 1e6,
        queue_pkts: 100,
        loss: 0.0,
    };
    b.link(src, r, mk(7, 8.0)); // serialization: 1 ms
    b.link(r, dst, mk(11, 4.0)); // serialization: 2 ms
    b.auto_routes();
    let mut sim = b.build();
    sim.run_until(SimTime::from_secs(2), 100_000);
    let t = sim.world().trace();
    let f = t.flow(1).expect("delivered");
    // 7 + 1 + 11 + 2 = 21 ms per packet, every packet.
    let lat = f.latency_ms.values();
    assert!(!lat.is_empty());
    for &l in lat {
        assert!((l - 21.0).abs() < 0.01, "latency {l}");
    }
}
