//! The reproduction's acceptance suite: every table and figure regenerates,
//! renders, and carries its expected shape. (Each experiment's detailed
//! shape assertions live in its own module tests; this suite guards the
//! harness end-to-end, including JSON serialization for EXPERIMENTS.md.)

use dlte::experiments as ex;
use dlte::experiments::Table;

fn check(t: &Table, min_rows: usize) {
    assert!(
        t.rows.len() >= min_rows,
        "[{}] only {} rows",
        t.id,
        t.rows.len()
    );
    assert!(!t.expectation.is_empty(), "[{}] missing expectation", t.id);
    let rendered = t.to_string();
    assert!(rendered.contains(&t.id));
    let json = t.to_json();
    let back: Table = serde_json::from_str(&json).expect("round trip");
    assert_eq!(back.rows, t.rows);
}

#[test]
fn t1_f2_and_closed_form_tables() {
    check(&ex::t1_design_space::run(), 2);
    check(&ex::f2_deployment::run(), 3);
    check(&ex::e3_harq::run(), 8);
}

#[test]
fn radio_tables_small() {
    check(
        &ex::e1_range::run_with(ex::e1_range::Params {
            distances_km: vec![0.5, 8.0],
            seed: 5,
        }),
        2,
    );
    check(
        &ex::e2_uplink::run_with(ex::e2_uplink::Params {
            distances_km: vec![4.0],
            seed: 5,
        }),
        2,
    );
    check(
        &ex::e4_timing_advance::run_with(ex::e4_timing_advance::Params {
            distances_km: vec![0.5, 5.0],
            seed: 5,
        }),
        2,
    );
    check(
        &ex::e5_fairness::run_with(ex::e5_fairness::Params {
            ap_counts: vec![2],
            client_km: 1.0,
            seconds: 1,
            seed: 5,
        }),
        1,
    );
    check(
        &ex::e6_hidden_terminal::run_with(ex::e6_hidden_terminal::Params {
            seconds: 1,
            seed: 5,
        }),
        3,
    );
    check(
        &ex::e7_cooperative::run_with(ex::e7_cooperative::Params {
            seconds: 1,
            seed: 5,
            ..Default::default()
        }),
        3,
    );
}

#[test]
fn architecture_tables_small() {
    check(
        &ex::f1_architecture::run_with(ex::f1_architecture::Params {
            seconds: 4,
            seed: 5,
        }),
        4,
    );
    check(
        &ex::e9_core_scaling::run_with(ex::e9_core_scaling::Params {
            ue_counts: vec![10],
            ues_per_site: 10,
            seed: 5,
        }),
        1,
    );
    check(
        &ex::e10_breakout::run_with(ex::e10_breakout::Params {
            epc_delay_ms: vec![15],
            seed: 5,
        }),
        1,
    );
    check(
        &ex::e11_x2_overhead::run_with(ex::e11_x2_overhead::Params {
            ap_counts: vec![2],
            seconds: 3,
            seed: 5,
        }),
        4,
    );
}

#[test]
fn mobility_tables_small() {
    check(
        &ex::e8_mobility::run_with(ex::e8_mobility::Params {
            dwell_s: vec![4.0],
            inet_delay_ms: 10,
            seed: 5,
        }),
        1,
    );
    check(
        &ex::e12_transport_ablation::run_with(ex::e12_transport_ablation::Params {
            dwell_s: 3.0,
            total_s: 10.0,
            seed: 5,
        }),
        4,
    );
}
