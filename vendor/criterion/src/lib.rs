//! Offline stand-in for `criterion`.
//!
//! Preserves the macro/API surface the workspace benches use, but instead of
//! statistical sampling it runs each bench body a handful of times and prints
//! a single coarse timing line. Good enough to keep `cargo bench` compiling
//! and to smoke-test the bench bodies.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u32 = 2;
const MEASURED_ITERS: u32 = 8;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total_ns: 0,
            iters: 0,
        };
        f(&mut b);
        b.report(id);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total_ns: 0,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&id.to_string());
        self
    }

    /// Accepted for compatibility; sampling knobs are meaningless here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Criterion {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }

    pub fn final_summary(&mut self) {}
}

/// A named group of benches; ids print as `group/bench`.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total_ns: 0,
            iters: 0,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            total_ns: 0,
            iters: 0,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    total_ns: u128,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..MEASURED_ITERS {
            black_box(routine());
        }
        self.total_ns += start.elapsed().as_nanos();
        self.iters += MEASURED_ITERS;
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<48} (no iterations)");
            return;
        }
        let per_iter = self.total_ns / self.iters as u128;
        println!("{id:<48} ~{} ns/iter ({} iters)", per_iter, self.iters);
    }
}

pub struct BenchmarkId {
    group: String,
    param: String,
}

impl BenchmarkId {
    pub fn new<P: fmt::Display>(group: &str, param: P) -> BenchmarkId {
        BenchmarkId {
            group: group.to_string(),
            param: param.to_string(),
        }
    }

    /// An id that is just the parameter (the surrounding group names it).
    pub fn from_parameter<P: fmt::Display>(param: P) -> BenchmarkId {
        BenchmarkId {
            group: String::new(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.group.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.group, self.param)
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sums(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| (0..100u64).sum::<u64>()));
        c.bench_with_input(BenchmarkId::new("sum", 1000u64), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sums(&mut c);
        c.final_summary();
    }
}
