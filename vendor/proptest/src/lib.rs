//! Offline stand-in for `proptest`.
//!
//! Runs each property 64 times against freshly sampled inputs from a
//! deterministic per-test RNG. No shrinking: a failing case panics with the
//! sampled inputs left to the assertion message. The strategy surface covers
//! what the dLTE test suite uses: integer/float ranges, `any::<T>()`, `Just`,
//! tuples, `prop_map`, `prop_oneof!`, and `prop::collection::{vec,
//! btree_set}`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Number of sampled cases per property.
pub const CASES: u32 = 64;

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64)
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMapStrategy { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FilterStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMapStrategy<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX - self.start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start + rng.below(span.saturating_add(1).max(1)) as $t
            }
        }
    )*}
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*}
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty strategy range");
        let span = self.end - self.start;
        let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
        self.start + draw
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;
    fn sample(&self, rng: &mut TestRng) -> u128 {
        let span = u128::MAX - self.start;
        let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
        self.start + draw
    }
}

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*}
}
impl_range_strategy_float!(f32, f64);

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric spread over a wide range.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// A size specification for collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let n = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let target = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            let mut out = BTreeSet::new();
            // Sets may be unable to reach `target` distinct values; bound the
            // attempts so tiny domains terminate.
            for _ in 0..target.saturating_mul(20).max(20) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.sample(rng));
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )*}
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The property-test entry macro. Mirrors real proptest's surface syntax for
/// the forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pname:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::CASES {
                    let _ = __case;
                    $(let $pname = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    // A closure so `prop_assume!` can skip the case by
                    // returning early.
                    let mut __run = || { $body };
                    __run();
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __options: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::OneOf::new(__options)
    }};
}

pub mod prelude {
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Just, Strategy,
    };
}

pub mod sample {
    use super::*;

    /// Uniformly select one of the given options.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> impl Strategy<Value = T> {
        struct Select<T>(Vec<T>);
        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
        Select(options)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_bounded(x in 3u64..17, y in 0.5f64..2.0, flip in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            let _ = flip;
        }

        #[test]
        fn collections_respect_sizes(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_map_work(
            choice in prop_oneof![Just(0u32), (5u32..8).prop_map(|x| x * 10)],
        ) {
            prop_assert!(choice == 0 || (50..80).contains(&choice));
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }
}
