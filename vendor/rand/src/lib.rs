//! Offline stand-in for the `rand` crate.
//!
//! The container this repository is developed in has no access to the cargo
//! registry, so the workspace vendors the *subset* of the `rand` API it
//! actually uses. The implementations are real (not no-ops): `f64` sampling
//! follows the same 53-bit construction as upstream `rand`, and integer range
//! sampling uses unbiased rejection. Determinism is per-seed, exactly like
//! the real crate, though the integer-range bitstream is not guaranteed to
//! match upstream `rand` draw-for-draw.

use std::fmt;

/// Error type mirroring `rand::Error` (only ever constructed by fallible
/// fill; our generators are infallible).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "random generator error")
    }
}

impl std::error::Error for Error {}

/// Core generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the same expansion
    /// upstream `rand_core` uses, so seeds agree with the real crate).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Vigna), word output truncated to 32 bits per chunk
            // exactly as rand_core does.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

mod sample {
    use super::RngCore;

    /// Types samplable from the "standard" distribution (`Rng::gen`).
    pub trait SampleStandard {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl SampleStandard for f64 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            // 53 random mantissa bits, uniform in [0, 1) — identical to the
            // real crate's `Standard` distribution for f64.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl SampleStandard for f32 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl SampleStandard for bool {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty => $via:ident),*) => {$(
            impl SampleStandard for $t {
                fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                    rng.$via() as $t
                }
            }
        )*}
    }
    impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                       u64 => next_u64, usize => next_u64,
                       i8 => next_u32, i16 => next_u32, i32 => next_u32,
                       i64 => next_u64, isize => next_u64);

    impl SampleStandard for u128 {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
            (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
        }
    }

    /// Unbiased uniform integer in `[0, n)` by rejection sampling.
    pub fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        if n.is_power_of_two() {
            return rng.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX % n) - 1;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }

    pub fn below_u128<R: RngCore + ?Sized>(rng: &mut R, n: u128) -> u128 {
        assert!(n > 0, "empty sampling range");
        if n.is_power_of_two() {
            return u128::sample_standard(rng) & (n - 1);
        }
        let zone = u128::MAX - (u128::MAX % n) - 1;
        loop {
            let v = u128::sample_standard(rng);
            if v <= zone {
                return v % n;
            }
        }
    }

    /// Ranges samplable by `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_range_uint {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + below(rng, span) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + below(rng, span + 1) as $t
                }
            }
        )*}
    }
    impl_range_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + below(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + below(rng, span + 1) as i128) as $t
                }
            }
        )*}
    }
    impl_range_int!(i8, i16, i32, i64, isize);

    impl SampleRange<u128> for std::ops::Range<u128> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
            assert!(self.start < self.end, "empty range");
            self.start + below_u128(rng, self.end - self.start)
        }
    }

    macro_rules! impl_range_float {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let unit = <$t as SampleStandard>::sample_standard(rng);
                    self.start + (self.end - self.start) * unit
                }
            }
        )*}
    }
    impl_range_float!(f32, f64);
}

pub use sample::{SampleRange, SampleStandard};

/// Convenience extension methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Placeholder module so `rand::rngs::...` paths resolve if needed.
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift so the high bits used by f64 sampling vary too
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            let x = self.0;
            x ^ (x >> 33)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Counter(9);
        for _ in 0..1000 {
            let a = r.gen_range(3u64..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(0usize..=4);
            assert!(b <= 4);
            let c = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&c));
        }
    }
}
