//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 stream cipher RNG.
//!
//! Implements the ChaCha quarter-round core (RFC 8439 layout: 4 constant
//! words, 8 key words from the 32-byte seed, 64-bit block counter, 64-bit
//! stream id) with 8 rounds, serving words from each 64-byte block in order.
//! Fully deterministic per seed and portable across platforms — the
//! properties `dlte-sim`'s `SimRng` documentation relies on.

use rand::{Error, RngCore, SeedableRng};

const ROUNDS: usize = 8;

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current block's output words.
    block: [u32; 16],
    /// Next word index to serve from `block`; 16 ⇒ block exhausted.
    word_pos: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865; // "expa"
        state[1] = 0x3320_646e; // "nd 3"
        state[2] = 0x7962_2d32; // "2-by"
        state[3] = 0x6b20_6574; // "te k"
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0; // stream id (always stream 0 here)
        state[15] = 0;
        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // column round
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.block[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.word_pos = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_pos >= 16 {
            self.refill();
        }
        let w = self.block[self.word_pos];
        self.word_pos += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word_pos: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_word().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha_core_changes_every_block() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
