//! Offline stand-in for `serde`.
//!
//! The real `serde` is a zero-copy, visitor-based framework; this vendored
//! replacement collapses the data model to an owned JSON-like [`value::Value`]
//! tree, which is all the dLTE workspace needs (derive on plain structs and
//! enums, JSON in/out via the sibling vendored `serde_json`). The trait names
//! and derive-macro spelling match upstream, so `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` work unchanged and
//! the workspace can be pointed back at the real crates when a network is
//! available.

pub mod value;

pub mod de {
    use std::fmt;

    /// Deserialization error (mirrors the role of `serde::de::Error`).
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl Error {
        pub fn custom<T: fmt::Display>(msg: T) -> Error {
            Error(msg.to_string())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}
}

pub mod ser {
    pub use crate::de::Error;
}

use value::{Map, Number, Value};

/// A type that can render itself into the [`Value`] data model.
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error>;
}

/// Owned-deserialization alias so code written against real serde's
/// `DeserializeOwned` bound keeps compiling.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

fn de_err<T: std::fmt::Display>(msg: T) -> de::Error {
    de::Error::custom(msg)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool().ok_or_else(|| de_err("expected bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_u64().ok_or_else(|| de_err(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| de_err(concat!("out of range for ", stringify!($t))))
            }
        }
    )*}
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let n = v.as_i64().ok_or_else(|| de_err(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n).map_err(|_| de_err(concat!("out of range for ", stringify!($t))))
            }
        }
    )*}
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_value(&self) -> Value {
        // Like real serde_json without `arbitrary_precision`: only values
        // that fit an u64 are representable; larger ones fall back to a
        // decimal string (lossless for our id-like uses).
        match u64::try_from(*self) {
            Ok(n) => Value::Number(Number::from_u64(n)),
            Err(_) => Value::String(self.to_string()),
        }
    }
}
impl Deserialize for u128 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        if let Some(n) = v.as_u64() {
            return Ok(n as u128);
        }
        if let Some(s) = v.as_str() {
            return s
                .parse::<u128>()
                .map_err(|e| de_err(format!("bad u128: {e}")));
        }
        Err(de_err("expected u128"))
    }
}

impl Serialize for i128 {
    fn serialize_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::Number(Number::from_i64(n)),
            Err(_) => Value::String(self.to_string()),
        }
    }
}
impl Deserialize for i128 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        if let Some(n) = v.as_i64() {
            return Ok(n as i128);
        }
        if let Some(s) = v.as_str() {
            return s
                .parse::<i128>()
                .map_err(|e| de_err(format!("bad i128: {e}")));
        }
        Err(de_err("expected i128"))
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}
impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64().ok_or_else(|| de_err("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}
impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| de_err("expected f32"))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let s = v.as_str().ok_or_else(|| de_err("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de_err("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(|s| s.to_string())
            .ok_or_else(|| de_err("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

/// The workspace derives `Deserialize` on a couple of structs carrying
/// `&'static str` name fields. An owned `Value` model cannot hand out
/// borrowed strings, so this impl leaks the (short, rare) string to obtain a
/// `'static` lifetime — acceptable for test/CLI round-trips.
impl Deserialize for &'static str {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(|s| &*Box::leak(s.to_string().into_boxed_str()))
            .ok_or_else(|| de_err("expected string"))
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(de_err("expected null"))
        }
    }
}

// ---------------------------------------------------------------------------
// References and smart pointers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

// ---------------------------------------------------------------------------
// Option / collections / tuples
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize_value(v).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.serialize_value()).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let a = v.as_array().ok_or_else(|| de_err("expected array"))?;
        a.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.serialize_value()).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.serialize_value()).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let items: Vec<T> = Vec::deserialize_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| de_err("wrong array length"))
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.serialize_value()).collect())
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let a = v.as_array().ok_or_else(|| de_err("expected array"))?;
        a.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.serialize_value()).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let a = v.as_array().ok_or_else(|| de_err("expected array"))?;
        a.iter().map(T::deserialize_value).collect()
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        // Sort the rendered values so output is deterministic across runs.
        let mut items: Vec<Value> = self.iter().map(|x| x.serialize_value()).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}
impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let a = v.as_array().ok_or_else(|| de_err("expected array"))?;
        a.iter().map(T::deserialize_value).collect()
    }
}

/// Map keys must render to / parse from strings (JSON object keys).
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, de::Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, de::Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_mapkey_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, de::Error> {
                s.parse::<$t>().map_err(|e| de_err(format!("bad map key: {e}")))
            }
        }
    )*}
}
impl_mapkey_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_key(), v.serialize_value());
        }
        Value::Object(m)
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let m = v.as_object().ok_or_else(|| de_err("expected object"))?;
        m.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        // Deterministic key order regardless of hasher state.
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k, v);
        }
        Value::Object(m)
    }
}
impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let m = v.as_object().ok_or_else(|| de_err("expected object"))?;
        m.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize_value(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let a = v.as_array().ok_or_else(|| de_err("expected array (tuple)"))?;
                let expected = [$($n),+].len();
                if a.len() != expected {
                    return Err(de_err(format!("expected {expected}-tuple, got {} items", a.len())));
                }
                Ok(($($t::deserialize_value(&a[$n])?,)+))
            }
        }
    )*}
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl Serialize for std::time::Duration {
    fn serialize_value(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "secs".into(),
            Value::Number(Number::from_u64(self.as_secs())),
        );
        m.insert(
            "nanos".into(),
            Value::Number(Number::from_u64(self.subsec_nanos() as u64)),
        );
        Value::Object(m)
    }
}
impl Deserialize for std::time::Duration {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let m = v
            .as_object()
            .ok_or_else(|| de_err("expected duration object"))?;
        let secs = m.get("secs").and_then(Value::as_u64).unwrap_or(0);
        let nanos = m.get("nanos").and_then(Value::as_u64).unwrap_or(0) as u32;
        Ok(std::time::Duration::new(secs, nanos))
    }
}
