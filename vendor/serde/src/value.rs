//! The JSON-like data model shared by the vendored `serde` and `serde_json`.
//!
//! Lives here (rather than in `serde_json`) because the derive macros
//! generate code against `::serde::value::Value`; `serde_json` re-exports
//! these types under their upstream names.

use std::fmt;

/// A JSON number: integer-preserving like `serde_json::Number`.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    pub fn from_u64(n: u64) -> Number {
        Number::PosInt(n)
    }

    pub fn from_i64(n: i64) -> Number {
        if n >= 0 {
            Number::PosInt(n as u64)
        } else {
            Number::NegInt(n)
        }
    }

    pub fn from_f64(x: f64) -> Number {
        Number::Float(x)
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            Number::NegInt(_) => None,
            Number::Float(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            Number::Float(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(x)
                if x.fract() == 0.0 && x >= i64::MIN as f64 && x <= i64::MAX as f64 =>
            {
                Some(x as i64)
            }
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(n) => Some(n as f64),
            Number::NegInt(n) => Some(n as f64),
            Number::Float(x) => Some(x),
        }
    }

    pub fn is_u64(&self) -> bool {
        matches!(self, Number::PosInt(_))
    }

    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    pub fn is_f64(&self) -> bool {
        matches!(self, Number::Float(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            // Mixed integer representations compare by value.
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64() && self.is_f64() == other.is_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(n) => write!(f, "{n}"),
            Number::NegInt(n) => write!(f, "{n}"),
            Number::Float(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Inf; match serde_json's Value behavior
                    // (non-finite floats become null).
                    write!(f, "null")
                } else if x == x.trunc() && x.abs() < 1e16 {
                    // Keep float-ness visible so values round-trip as floats.
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (the `serde_json::Map` stand-in).
///
/// Insertion order is preserved — this matches real serde_json's *struct*
/// serialization (declaration order) which is what the experiment tables and
/// reports flow through.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Map {
        Map {
            entries: Vec::new(),
        }
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in self.entries.iter_mut() {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a String, &'a Value)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.entries.iter().map(|(k, v)| (k, v)))
    }
}

/// The JSON value tree (the `serde_json::Value` stand-in).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects, like serde_json).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|m| m.get_mut(key))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::Number(Number::from_u64(n))
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(Number::from_i64(n))
    }
}
impl From<f64> for Value {
    fn from(x: f64) -> Value {
        if x.is_finite() {
            Value::Number(Number::from_f64(x))
        } else {
            Value::Null
        }
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
