//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the vendored `serde::Serialize` / `serde::Deserialize`
//! (the `Value`-based traits) for plain structs and enums. The parser walks
//! the raw token stream by hand — no `syn`/`quote`, since the registry is
//! unreachable. Supported shapes cover everything the dLTE workspace derives:
//!
//! * named-field structs (externally: JSON objects)
//! * newtype / tuple structs (inner value / array)
//! * unit structs (null)
//! * enums with unit / newtype / tuple / struct variants (externally tagged,
//!   like real serde: `"Variant"` or `{"Variant": ...}`)
//! * `#[serde(default)]` at struct level (missing fields filled from
//!   `Default::default()` of the struct) and at field level (from the field
//!   type's `Default`)
//!
//! Generics, lifetimes and the wider serde attribute surface are not
//! supported; deriving on such a type fails loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsed shape
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(default)]` on the field.
    default: bool,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    /// `#[serde(default)]` on the container.
    container_default: bool,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

/// Serde options found in one attribute run (`#[serde(...)]` and doc/derive
/// attrs are skipped transparently).
fn consume_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(opt) = t {
                            match opt.to_string().as_str() {
                                "default" => default = true,
                                // Options that don't change the Value-model
                                // encoding are accepted and ignored.
                                "deny_unknown_fields" | "transparent" => {}
                                other => panic!(
                                    "vendored serde_derive: unsupported serde attribute `{other}`"
                                ),
                            }
                        }
                    }
                }
            }
        }
        i += 2;
    }
    (i, default)
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Skip one type (or expression) until a top-level comma, tracking `<...>`
/// nesting so generic arguments don't split fields.
fn skip_to_top_level_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle <= 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, field_default) = consume_attrs(&tokens, i);
        i = skip_visibility(&tokens, ni);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            panic!(
                "vendored serde_derive: expected field name, got {:?}",
                tokens.get(i)
            );
        };
        let name = name.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("vendored serde_derive: expected `:` after field `{name}`, got {other:?}")
            }
        }
        i = skip_to_top_level_comma(&tokens, i);
        if i < tokens.len() {
            i += 1; // consume comma
        }
        fields.push(Field {
            name,
            default: field_default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (ni, _) = consume_attrs(&tokens, i);
        i = skip_visibility(&tokens, ni);
        if i >= tokens.len() {
            break; // trailing comma
        }
        count += 1;
        i = skip_to_top_level_comma(&tokens, i);
        if i < tokens.len() {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, _) = consume_attrs(&tokens, i);
        i = ni;
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            panic!(
                "vendored serde_derive: expected variant name, got {:?}",
                tokens.get(i)
            );
        };
        let name = name.to_string();
        i += 1;
        let variant = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                Variant::Tuple(name, n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                Variant::Struct(name, fields)
            }
            _ => Variant::Unit(name),
        };
        variants.push(variant);
        // Skip an optional discriminant, then the separating comma.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i = skip_to_top_level_comma(&tokens, i);
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, container_default) = consume_attrs(&tokens, 0);
    i = skip_visibility(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic type `{name}` is not supported");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("vendored serde_derive: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("vendored serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("vendored serde_derive: cannot derive for `{other}` items"),
    };
    Item {
        name,
        container_default,
        shape,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut __m = ::serde::value::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__m.insert(::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::serialize_value(&self.{0}));\n",
                    f.name
                ));
            }
            s.push_str("::serde::value::Value::Object(__m)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::value::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds_pat}) => {{\n\
                             let mut __m = ::serde::value::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), {inner});\n\
                             ::serde::value::Value::Object(__m)\n}}\n",
                            binds_pat = binds.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner =
                            String::from("let mut __fm = ::serde::value::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__fm.insert(::std::string::String::from(\"{0}\"), \
                                 ::serde::Serialize::serialize_value({0}));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds_pat} }} => {{\n\
                             {inner}\
                             let mut __m = ::serde::value::Map::new();\n\
                             __m.insert(::std::string::String::from(\"{vn}\"), \
                             ::serde::value::Value::Object(__fm));\n\
                             ::serde::value::Value::Object(__m)\n}}\n",
                            binds_pat = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_field_extract(
    type_name: &str,
    fields: &[Field],
    map_expr: &str,
    container_default: bool,
) -> String {
    // When the container has `#[serde(default)]`, build the default value
    // once and move missing fields out of it.
    let mut s = String::new();
    if container_default {
        s.push_str(&format!(
            "let __defaults: {type_name} = ::std::default::Default::default();\n"
        ));
    }
    let mut inits = String::new();
    for f in fields {
        let missing = if container_default {
            format!("__defaults.{}", f.name)
        } else if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"{type_name}: missing field `{}`\"))",
                f.name
            )
        };
        inits.push_str(&format!(
            "{0}: match {map_expr}.get(\"{0}\") {{\n\
             ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize_value(__x)?,\n\
             ::std::option::Option::None => {missing},\n}},\n",
            f.name
        ));
    }
    s.push_str(&inits);
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let extract = gen_named_field_extract(name, fields, "__m", item.container_default);
            // Split the prelude (possible __defaults binding) from field inits.
            let (prelude, inits) = if item.container_default {
                let idx = extract.find(";\n").map(|i| i + 2).unwrap_or(0);
                (extract[..idx].to_string(), extract[idx..].to_string())
            } else {
                (String::new(), extract)
            };
            format!(
                "let __m = __v.as_object().ok_or_else(|| \
                 ::serde::de::Error::custom(\"{name}: expected object\"))?;\n\
                 {prelude}\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__a[{i}])?"))
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::de::Error::custom(\"{name}: expected array\"))?;\n\
                 if __a.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"{name}: expected {n} elements\"));\n}}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!(
            "if __v.is_null() {{ ::std::result::Result::Ok({name}) }} else {{\n\
             ::std::result::Result::Err(::serde::de::Error::custom(\"{name}: expected null\"))\n}}"
        ),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        // Also accept the tagged-object spelling {"Variant": null}.
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Variant::Tuple(vn, 1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(__inner)?)),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize_value(&__a[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = __inner.as_array().ok_or_else(|| \
                             ::serde::de::Error::custom(\"{name}::{vn}: expected array\"))?;\n\
                             if __a.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::de::Error::custom(\
                             \"{name}::{vn}: expected {n} elements\"));\n}}\n\
                             ::std::result::Result::Ok({name}::{vn}({items}))\n}}\n",
                            items = items.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let inits = gen_named_field_extract(
                            &format!("{name}::{vn}"),
                            fields,
                            "__fm",
                            false,
                        );
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __fm = __inner.as_object().ok_or_else(|| \
                             ::serde::de::Error::custom(\"{name}::{vn}: expected object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}\
                 _ => return ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"{name}: unknown variant\")),\n}}\n}}\n\
                 let __m = __v.as_object().ok_or_else(|| \
                 ::serde::de::Error::custom(\"{name}: expected variant string or object\"))?;\n\
                 let ::std::option::Option::Some((__tag, __inner)) = __m.iter().next() else {{\n\
                 return ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"{name}: empty variant object\"));\n}};\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 _ => ::std::result::Result::Err(::serde::de::Error::custom(\
                 \"{name}: unknown variant\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
