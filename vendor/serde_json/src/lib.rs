//! Offline stand-in for `serde_json`.
//!
//! Re-exports the vendored `serde`'s [`Value`]/[`Map`]/[`Number`] model under
//! the upstream names and provides the upstream entry points the workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], plus a spec-compliant JSON text parser and printer
//! (strings with escapes, nested containers, integer-preserving numbers).

pub use serde::value::{Map, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error type covering both parse and conversion failures.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(s: impl Into<String>) -> Error {
        Error(s.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Error {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Rebuild a typed value from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::deserialize_value(&value).map_err(Error::from)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty JSON text (2-space indent, like upstream).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value_str(s)?;
    T::deserialize_value(&v).map_err(Error::from)
}

fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_value(item, out, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: must be followed by \uXXXX low.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::msg("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error::msg("bad surrogate pair"))?,
                            );
                        } else {
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("bad unicode escape"))?,
                            );
                        }
                    }
                    other => {
                        return Err(Error::msg(format!(
                            "bad escape {:?}",
                            other.map(|c| c as char)
                        )))
                    }
                },
                Some(b) if b < 0x20 => return Err(Error::msg("control character in string")),
                Some(b) => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    out.push_str(chunk);
                    let _ = b;
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("bad hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(n)));
            }
        }
        text.parse::<f64>()
            .map(|x| Value::Number(Number::from_f64(x)))
            .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            m.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(m)),
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

/// Minimal `json!` for literals used in tests and default-params tables.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        let text = r#"{"a": [1, 2.5, -3], "b": "hi\nthere", "c": null, "d": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "hi\nthere");
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn integers_stay_integers() {
        let v: Value = from_str("42").unwrap();
        assert_eq!(v.as_u64(), Some(42));
        assert_eq!(to_string(&v).unwrap(), "42");
        let f: Value = from_str("42.0").unwrap();
        assert_eq!(to_string(&f).unwrap(), "42.0");
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Value = from_str(r#"{"x": [1], "y": {"z": 2}}"#).unwrap();
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  \"x\": [\n    1\n  ]"), "{s}");
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "A\u{1F600}");
    }

    #[test]
    fn typed_round_trip_via_traits() {
        let xs = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let json = to_string(&xs).unwrap();
        let back: Vec<(u64, String)> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }
}
